"""Predicate pushdown: column ranges, stripe pruning, selectivity.

From a WHERE clause we extract per-column value constraints out of the
top-level AND conjuncts.  Those ranges drive three optimizations that are
central to the paper's results:

* **stripe pruning** — skip ORC stripes whose min/max statistics cannot
  match (this is why date-targeted grid updates touch ~α of the data);
* **projection pushdown** — the scan only decodes referenced columns;
* **selectivity estimation** — the DualTable cost model's α/β estimate.
"""

from dataclasses import dataclass

from repro.hive import ast_nodes as ast


@dataclass
class ColumnRange:
    """Conjunctive constraint on one column."""

    low: object = None
    high: object = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    in_set: frozenset = None

    def intersect(self, other):
        merged = ColumnRange(self.low, self.high, self.low_inclusive,
                             self.high_inclusive, self.in_set)
        if other.low is not None and (merged.low is None
                                      or other.low > merged.low):
            merged.low, merged.low_inclusive = other.low, other.low_inclusive
        elif other.low is not None and other.low == merged.low:
            merged.low_inclusive = merged.low_inclusive and other.low_inclusive
        if other.high is not None and (merged.high is None
                                       or other.high < merged.high):
            merged.high, merged.high_inclusive = (other.high,
                                                  other.high_inclusive)
        elif other.high is not None and other.high == merged.high:
            merged.high_inclusive = (merged.high_inclusive
                                     and other.high_inclusive)
        if other.in_set is not None:
            merged.in_set = (other.in_set if merged.in_set is None
                             else merged.in_set & other.in_set)
        return merged

    def may_overlap(self, stat_min, stat_max):
        """Could any value in [stat_min, stat_max] satisfy this range?"""
        if stat_min is None or stat_max is None:
            return True     # all-null or unknown stats: cannot prune safely
        try:
            if self.in_set is not None:
                if not any(stat_min <= v <= stat_max for v in self.in_set):
                    return False
            if self.low is not None:
                if stat_max < self.low:
                    return False
                if stat_max == self.low and not self.low_inclusive:
                    return False
            if self.high is not None:
                if stat_min > self.high:
                    return False
                if stat_min == self.high and not self.high_inclusive:
                    return False
        except TypeError:
            return True     # mixed types: do not prune
        return True

    def overlap_fraction(self, stats, num_rows):
        """Rough fraction of a stripe's rows that may match.

        Uses min/max uniformity for numeric ranges and NDV (distinct
        count) for equality / IN-list constraints.
        """
        stat_min, stat_max = stats.get("min"), stats.get("max")
        if not self.may_overlap(stat_min, stat_max):
            return 0.0
        if stat_min is None or stat_max is None:
            return 1.0
        if self.in_set is not None:
            try:
                inside = sum(1 for v in self.in_set
                             if stat_min <= v <= stat_max)
            except TypeError:
                inside = len(self.in_set)
            ndv = max(1, stats.get("ndv", 0) or 1)
            return min(1.0, inside / ndv)
        if not isinstance(stat_min, (int, float)) \
                or not isinstance(stat_max, (int, float)) \
                or isinstance(stat_min, bool):
            return 1.0
        lo = self.low if self.low is not None else stat_min
        hi = self.high if self.high is not None else stat_max
        span = stat_max - stat_min
        if span <= 0:
            return 1.0
        overlap = max(0.0, min(hi, stat_max) - max(lo, stat_min))
        return min(1.0, overlap / span)


def extract_ranges(expr):
    """Column constraints implied by the required conjuncts of ``expr``."""
    ranges = {}
    if expr is None:
        return ranges
    for conjunct in _conjuncts(expr):
        name_range = _range_from_conjunct(conjunct)
        if name_range is None:
            continue
        name, col_range = name_range
        if name in ranges:
            ranges[name] = ranges[name].intersect(col_range)
        else:
            ranges[name] = col_range
    return ranges


def _conjuncts(expr):
    if isinstance(expr, ast.LogicalOp) and expr.op == "and":
        for operand in expr.operands:
            yield from _conjuncts(operand)
    else:
        yield expr


def _literal_value(expr):
    if isinstance(expr, ast.Literal):
        return True, expr.value
    if isinstance(expr, ast.UnaryMinus) and isinstance(expr.operand,
                                                       ast.Literal):
        value = expr.operand.value
        if isinstance(value, (int, float)):
            return True, -value
    return False, None


def _range_from_conjunct(expr):
    if isinstance(expr, ast.BinaryOp) and expr.op in ("=", "<", "<=", ">",
                                                      ">="):
        column, op, value = None, expr.op, None
        ok, lit = _literal_value(expr.right)
        if isinstance(expr.left, ast.ColumnRef) and ok:
            column, value = expr.left, lit
        else:
            ok, lit = _literal_value(expr.left)
            if isinstance(expr.right, ast.ColumnRef) and ok:
                column, value = expr.right, lit
                flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
                op = flip.get(op, op)
        if column is None or value is None:
            return None
        name = column.name.lower()
        if op == "=":
            return name, ColumnRange(low=value, high=value,
                                     in_set=frozenset([value]))
        if op == "<":
            return name, ColumnRange(high=value, high_inclusive=False)
        if op == "<=":
            return name, ColumnRange(high=value)
        if op == ">":
            return name, ColumnRange(low=value, low_inclusive=False)
        if op == ">=":
            return name, ColumnRange(low=value)
    if isinstance(expr, ast.InList) and not expr.negated \
            and isinstance(expr.operand, ast.ColumnRef):
        values = []
        for item in expr.items:
            ok, lit = _literal_value(item)
            if not ok:
                return None
            if isinstance(lit, (set, frozenset)):
                values.extend(lit)      # materialized IN-subquery
            else:
                values.append(lit)
        if values:
            return expr.operand.name.lower(), ColumnRange(
                in_set=frozenset(values),
                low=min(values), high=max(values))
    return None


def make_stripe_filter(schema_names, ranges):
    """Build a ``StripeInfo -> bool`` filter for the ORC reader.

    ``schema_names`` is the ORC file's column-name list in order.
    Returns None when no constrained column exists in the file.
    """
    indexed = []
    lower_names = [n.lower() for n in schema_names]
    for name, col_range in ranges.items():
        if name in lower_names:
            indexed.append((lower_names.index(name), col_range))
    if not indexed:
        return None

    def stripe_filter(stripe):
        for idx, col_range in indexed:
            stats = stripe.stats(idx)
            if not col_range.may_overlap(stats["min"], stats["max"]):
                return False
        return True

    return stripe_filter


def estimate_selection(readers, ranges):
    """Estimate (selected_rows, total_rows) across ORC readers.

    Stripe statistics only — no data reads, so this is what the DualTable
    cost evaluator can afford to do before choosing a plan.
    """
    total = 0
    selected = 0.0
    for reader in readers:
        names = [n for n, _ in reader.schema]
        lower = [n.lower() for n in names]
        for stripe in reader.stripes:
            total += stripe.num_rows
            fraction = 1.0
            for name, col_range in ranges.items():
                lname = name.lower()
                if lname not in lower:
                    continue
                stats = stripe.stats(lower.index(lname))
                # Independence assumption: conjunct selectivities multiply.
                fraction *= col_range.overlap_fraction(stats,
                                                       stripe.num_rows)
                if fraction == 0.0:
                    break
            selected += fraction * stripe.num_rows
    return selected, total
