"""Client-facing HBase table and the region-server service.

:class:`HTable` routes operations to regions by key range and charges the
cluster ledger for every random read/write:

* ``put``/``delete`` — bytes at the HBase write rate plus per-op latency,
* ``get`` — a seek plus the bytes of the touched cells,
* ``scan`` — the *raw* merged cell bytes in range (LSM read amplification
  included: shadowed versions and tombstones still cost I/O) plus a
  per-row latency.

Timestamps come from a logical clock owned by :class:`HBaseService` so the
multi-version behaviour is deterministic.
"""

import bisect
import itertools

from repro.common.errors import TableExistsError, TableNotFoundError
from repro.hbase.region import Region


class HTable:
    """One HBase table: a sorted list of regions plus the client API."""

    def __init__(self, name, service, split_points=(), system=False):
        self.name = name
        self._service = service
        self._cluster = service.cluster
        #: system tables (metadata) are control-plane state cached by the
        #: master; their accesses are not charged as data-path I/O.
        self.system = system
        bounds = [None] + sorted(split_points) + [None]
        self.regions = [Region(bounds[i], bounds[i + 1])
                        for i in range(len(bounds) - 1)]
        self._split_points = sorted(split_points)

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------
    def _region_for(self, row):
        idx = bisect.bisect_right(self._split_points, row)
        return self.regions[idx]

    def _regions_in_range(self, start_row, stop_row):
        for region in self.regions:
            if start_row is not None and region.stop_row is not None \
                    and region.stop_row <= start_row:
                continue
            if stop_row is not None and region.start_row is not None \
                    and region.start_row >= stop_row:
                continue
            yield region

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------
    def put(self, row, values, ts=None):
        """Put ``{qualifier: value}`` cells for one row."""
        self._service.ensure_available()
        self._cluster.faults.hit("hbase.put", table=self.name)
        ts = self._service.next_ts() if ts is None else ts
        region = self._region_for(row)
        nbytes = 0
        for qualifier, value in values.items():
            region.put(row, qualifier, value, ts)
            nbytes += len(row) + len(qualifier) + 9 + len(value)
        if not self.system:
            self._cluster.charge_hbase_write(nbytes, nops=1)
        return ts

    def delete_row(self, row, ts=None):
        self._service.ensure_available()
        self._cluster.faults.hit("hbase.delete", table=self.name)
        ts = self._service.next_ts() if ts is None else ts
        self._region_for(row).delete_row(row, ts)
        if not self.system:
            self._cluster.charge_hbase_write(len(row) + 9, nops=1)
        return ts

    def delete_column(self, row, qualifier, ts=None):
        self._service.ensure_available()
        self._cluster.faults.hit("hbase.delete", table=self.name)
        ts = self._service.next_ts() if ts is None else ts
        self._region_for(row).delete_column(row, qualifier, ts)
        if not self.system:
            self._cluster.charge_hbase_write(
                len(row) + len(qualifier) + 9, nops=1)
        return ts

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------
    def get(self, row, versions=1):
        """Resolved cells of one row, or None if absent/deleted."""
        self._service.ensure_available()
        region = self._region_for(row)
        data = region.get(row, versions=versions)
        if not self.system:
            nbytes = region.bytes_in_range(row, row + b"\x00")
            self._cluster.charge_hbase_read(max(nbytes, len(row)), nops=1)
        return data

    def scan(self, start_row=None, stop_row=None, versions=1):
        """Yield resolved ``(row, cells)`` pairs in global row order."""
        self._service.ensure_available()
        for region in self._regions_in_range(start_row, stop_row):
            raw_bytes = 0
            nrows = 0
            for row, data in region.scan(start_row, stop_row,
                                         versions=versions):
                nrows += 1
                yield row, data
            if not self.system:
                raw_bytes = region.bytes_in_range(start_row, stop_row)
                self._cluster.charge_hbase_scan(raw_bytes, nrows)

    def scan_all(self, **kwargs):
        return list(self.scan(**kwargs))

    def scan_silent(self, start_row=None, stop_row=None, versions=1):
        """Uncharged :meth:`scan` for control-plane planning stats.

        Planners use this to classify ranges (e.g. does any delta touch
        the primary-key column?) without perturbing the ledger; never
        use it on a data path.
        """
        self._service.ensure_available()
        for region in self._regions_in_range(start_row, stop_row):
            for row, data in region.scan(start_row, stop_row,
                                         versions=versions):
                yield row, data

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------
    def flush(self):
        for region in self.regions:
            region.flush()

    def compact(self, major=False):
        before = self.store_bytes
        # Compaction drops shadowed versions, shrinking the raw bytes a
        # scan charges — cached delta ranges must re-materialize.
        delta_cache = getattr(self._cluster, "delta_cache", None)
        if delta_cache is not None:
            delta_cache.invalidate_group(self.name)
        for region in self.regions:
            region.compact(major=major)
        # Compaction rewrites store files: charge read+write of the data.
        self._cluster._charge("hbase", "compact", nbytes=before + self.store_bytes,
                              nops=1,
                              rate=self._cluster.profile.per_slot_rate(
                                  self._cluster.profile.hbase_write_bps))

    def truncate(self):
        bounds = [None] + self._split_points + [None]
        self.regions = [Region(bounds[i], bounds[i + 1])
                        for i in range(len(bounds) - 1)]

    def reclaim_range(self, start_row=None, stop_row=None):
        """Physically drop every cell in range, tombstones included.

        Models the range-scoped major compaction that follows a bulk
        delete.  Like :meth:`truncate` the reclaim itself is background
        I/O the client does not wait on, but without it
        ``bytes_in_range`` would count tombstones forever and stripe
        pruning over the range would never re-enable.
        """
        self._service.ensure_available()
        for region in self._regions_in_range(start_row, stop_row):
            region.purge_range(start_row, stop_row)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def store_bytes(self):
        self._service.ensure_available()
        return sum(r.store_bytes for r in self.regions)

    def bytes_in_range(self, start_row=None, stop_row=None):
        # Stats must see post-replay state: planners use them to decide
        # whether pruning is safe, and a crash-wiped memstore would make
        # a populated range look empty.
        self._service.ensure_available()
        return sum(r.bytes_in_range(start_row, stop_row)
                   for r in self._regions_in_range(start_row, stop_row))

    def rows_in_range(self, start_row=None, stop_row=None):
        """Live (resolved) row count in range; control-plane, uncharged."""
        self._service.ensure_available()
        return sum(sum(1 for _ in region.scan(start_row, stop_row))
                   for region in self._regions_in_range(start_row, stop_row))

    def cell_count(self):
        self._service.ensure_available()
        return sum(r.cell_count() for r in self.regions)

    def count_rows(self):
        """Number of live (non-deleted) rows; charges a full scan."""
        return sum(1 for _ in self.scan())

    def is_empty(self):
        for _ in itertools.islice(self.scan(), 1):
            return False
        return True


class HBaseService:
    """The HMaster + region servers: table catalog and logical clock."""

    def __init__(self, cluster):
        self.cluster = cluster
        self._tables = {}
        self._ts = itertools.count(1)
        self._crashed = False

    def next_ts(self):
        return next(self._ts)

    # ------------------------------------------------------------------
    # Crash / recovery (the WAL contract).
    # ------------------------------------------------------------------
    def crash_region_server(self):
        """Crash the (single simulated) region server.

        Every region's memstore is lost; HFiles and WALs survive.  The
        next client operation triggers WAL replay via
        :meth:`ensure_available`.  Returns the number of cells dropped
        from memstores.
        """
        lost = 0
        for table in self._tables.values():
            for region in table.regions:
                lost += region.crash()
        self._crashed = True
        # Cached delta ranges embed charges recorded against pre-crash
        # region state; WAL recovery (and its replay charge) must be
        # observed by the next scan, so the cache cannot survive.
        delta_cache = getattr(self.cluster, "delta_cache", None)
        if delta_cache is not None:
            delta_cache.clear()
        self.cluster.metrics.incr("hbase.region_crashes")
        return lost

    def ensure_available(self):
        """Entry gate for every client op: recover after a crash."""
        if self._crashed:
            self.recover()

    def recover(self):
        """Replay every region's WAL; charge the replay I/O.

        Idempotent — regions rebuild their memstores from the WAL from
        scratch, so repeated recovery converges to the same state.
        Returns the data-path WAL bytes replayed.
        """
        self._crashed = False
        with self.cluster.tracer.span("substrate", "hbase:wal_replay") \
                as span:
            replayed = 0
            for table in self._tables.values():
                table_bytes = sum(r.recover() for r in table.regions)
                if not table.system:
                    replayed += table_bytes
            if replayed:
                self.cluster._charge(
                    "hbase", "wal_replay", nbytes=replayed, nops=1,
                    rate=self.cluster.profile.hbase_write_bps)
            span.annotate(replayed_bytes=replayed)
        self.cluster.metrics.incr("hbase.wal_replays")
        self.cluster.metrics.observe("hbase.wal_replay_bytes", replayed)
        return replayed

    def create_table(self, name, split_points=(), system=False):
        if name in self._tables:
            raise TableExistsError("HBase table exists: %s" % name)
        table = HTable(name, self, split_points=split_points, system=system)
        self._tables[name] = table
        return table

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError("no HBase table: %s" % name) from None

    def has_table(self, name):
        return name in self._tables

    def drop_table(self, name):
        if name not in self._tables:
            raise TableNotFoundError("no HBase table: %s" % name)
        del self._tables[name]

    def ensure_table(self, name, split_points=(), system=False):
        if name in self._tables:
            return self._tables[name]
        return self.create_table(name, split_points=split_points,
                                 system=system)

    def list_tables(self):
        return sorted(self._tables)
