"""In-memory write buffer for a region (the LSM tree's top level)."""

import bisect


class MemStore:
    """Sorted in-memory run of KeyValues awaiting a flush.

    Inserts keep the run sorted (bisect insertion — fine at simulation
    scale and keeps scans allocation-free).
    """

    def __init__(self):
        self._cells = []
        self._keys = []
        self._bytes = 0

    def add(self, cell):
        key = cell.sort_key()
        idx = bisect.bisect_left(self._keys, key)
        self._keys.insert(idx, key)
        self._cells.insert(idx, cell)
        self._bytes += cell.size_bytes()

    def scan(self, start_row=None, stop_row=None):
        """Yield cells with ``start_row <= row < stop_row`` in sort order."""
        lo = 0
        if start_row is not None:
            lo = bisect.bisect_left(self._keys, (start_row,))
        for i in range(lo, len(self._cells)):
            cell = self._cells[i]
            if stop_row is not None and cell.row >= stop_row:
                return
            yield cell

    def drain(self):
        """Return all cells (sorted) and empty the store."""
        cells = self._cells
        self._cells = []
        self._keys = []
        self._bytes = 0
        return cells

    @property
    def size_bytes(self):
        return self._bytes

    def __len__(self):
        return len(self._cells)

    def __bool__(self):
        return bool(self._cells)
