"""Immutable sorted store files (the LSM tree's on-disk runs).

An :class:`HFile` is a sorted, immutable run of KeyValues with a row-key
index for point lookups.  Conceptually HFiles live on HDFS; the simulation
keeps the cell objects plus an accurate serialized size so reads can be
charged by the byte.
"""

import bisect
import itertools

_file_ids = itertools.count(1)


class HFile:
    """One immutable store file of a region."""

    def __init__(self, cells):
        self.file_id = next(_file_ids)
        self._cells = sorted(cells, key=lambda c: c.sort_key())
        self._row_keys = [c.row for c in self._cells]
        self.size_bytes = sum(c.size_bytes() for c in self._cells)
        self.min_row = self._cells[0].row if self._cells else None
        self.max_row = self._cells[-1].row if self._cells else None

    def __len__(self):
        return len(self._cells)

    def scan(self, start_row=None, stop_row=None):
        """Yield cells with ``start_row <= row < stop_row`` in sort order."""
        lo = 0
        if start_row is not None:
            lo = bisect.bisect_left(self._row_keys, start_row)
        for i in range(lo, len(self._cells)):
            cell = self._cells[i]
            if stop_row is not None and cell.row >= stop_row:
                return
            yield cell

    def may_contain_row(self, row):
        """Range check used to skip files during point gets."""
        if self.min_row is None:
            return False
        return self.min_row <= row <= self.max_row

    def cells_in_range(self, start_row=None, stop_row=None):
        return list(self.scan(start_row, stop_row))

    def bytes_in_range(self, start_row=None, stop_row=None):
        return sum(c.size_bytes() for c in self.scan(start_row, stop_row))

    def __repr__(self):
        return "HFile(id=%d, %d cells, %dB)" % (
            self.file_id, len(self._cells), self.size_bytes)
