"""Region: one key-range shard of an HBase table.

A region owns a MemStore and a stack of HFiles, serves puts/deletes/gets/
scans, and supports flush plus minor/major compaction.  Version resolution
implements HBase semantics: latest timestamp wins, row tombstones shadow
everything at or below their timestamp, column tombstones shadow one
qualifier.
"""

import heapq

from repro.hbase.cells import CellType, KeyValue, row_tombstone
from repro.hbase.hfile import HFile
from repro.hbase.memstore import MemStore


class Region:
    """One shard: ``start_row <= row < stop_row`` (None = unbounded)."""

    def __init__(self, start_row=None, stop_row=None,
                 flush_threshold_bytes=8 * 1024 * 1024):
        self.start_row = start_row
        self.stop_row = stop_row
        self.memstore = MemStore()
        self.hfiles = []
        self.flush_threshold_bytes = flush_threshold_bytes
        #: the write-ahead log: every cell applied since the last flush,
        #: in arrival order.  WAL entries are durable (HDFS-backed in
        #: real HBase); the memstore is volatile — a region-server crash
        #: loses the memstore and :meth:`recover` replays the WAL.
        self.wal = []
        self.wal_bytes = 0

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------
    def contains_row(self, row):
        if self.start_row is not None and row < self.start_row:
            return False
        if self.stop_row is not None and row >= self.stop_row:
            return False
        return True

    def apply(self, cell):
        """Apply a put/delete cell: WAL append + memstore insert.

        The WAL append happens first — only once the edit is durable is
        it acknowledged — so :meth:`crash` + :meth:`recover` can never
        lose an acknowledged edit.
        """
        self.wal.append(cell)
        self.wal_bytes += cell.size_bytes()
        self.memstore.add(cell)
        if self.memstore.size_bytes >= self.flush_threshold_bytes:
            self.flush()

    def put(self, row, qualifier, value, ts):
        self.apply(KeyValue(row, qualifier, ts, CellType.PUT, value))

    def delete_column(self, row, qualifier, ts):
        self.apply(KeyValue(row, qualifier, ts, CellType.DELETE_COLUMN))

    def delete_row(self, row, ts):
        self.apply(row_tombstone(row, ts))

    # ------------------------------------------------------------------
    # Flush / compaction.
    # ------------------------------------------------------------------
    def flush(self):
        if not self.memstore:
            return None
        hfile = HFile(self.memstore.drain())
        self.hfiles.append(hfile)
        # Flushed cells are durable in the HFile; their WAL entries are
        # no longer needed for recovery.
        self.wal = []
        self.wal_bytes = 0
        return hfile

    # ------------------------------------------------------------------
    # Crash / recovery.
    # ------------------------------------------------------------------
    def crash(self):
        """Region-server crash: the volatile memstore is lost.

        HFiles (already on disk) and the WAL (durable by construction)
        survive.  Returns the number of cells lost from the memstore.
        """
        lost = len(self.memstore)
        self.memstore = MemStore()
        return lost

    def recover(self):
        """Rebuild the memstore by replaying the WAL.

        Idempotent: the memstore is always rebuilt from scratch, so
        calling :meth:`recover` on a healthy region is a no-op state-wise.
        Returns the number of WAL bytes replayed.
        """
        self.memstore = MemStore()
        replayed = 0
        for cell in self.wal:
            self.memstore.add(cell)
            replayed += cell.size_bytes()
        return replayed

    def compact(self, major=False):
        """Merge store files.

        Minor compaction merges all HFiles into one but keeps tombstones;
        major compaction also resolves versions and discards tombstones
        and shadowed cells.
        """
        self.flush()
        if not self.hfiles:
            return None
        cells = list(self._merged_cells())
        if major:
            cells = list(_resolve(cells, versions=1, keep_deletes=False))
        merged = HFile(cells)
        self.hfiles = [merged] if cells else []
        return merged

    def purge_range(self, start_row=None, stop_row=None):
        """Physically drop every cell in range, tombstones included.

        Rebuilds the memstore, HFiles and WAL without the range's cells
        — the storage-level effect of a range-scoped major compaction.
        The WAL is purged too, so a later :meth:`recover` cannot
        resurrect reclaimed cells.
        """
        def in_range(row):
            if start_row is not None and row < start_row:
                return False
            return stop_row is None or row < stop_row

        kept = [c for c in self.memstore.scan() if not in_range(c.row)]
        self.memstore = MemStore()
        for cell in kept:
            self.memstore.add(cell)
        self.hfiles = [f for f in
                       (HFile([c for c in f.scan() if not in_range(c.row)])
                        for f in self.hfiles)
                       if len(f)]
        self.wal = [c for c in self.wal if not in_range(c.row)]
        self.wal_bytes = sum(c.size_bytes() for c in self.wal)

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------
    def _merged_cells(self, start_row=None, stop_row=None):
        sources = [self.memstore.scan(start_row, stop_row)]
        sources.extend(f.scan(start_row, stop_row) for f in self.hfiles)
        return heapq.merge(*sources, key=lambda c: c.sort_key())

    def scan_cells(self, start_row=None, stop_row=None):
        """Raw merged cell stream (pre-resolution), for cost accounting."""
        return self._merged_cells(start_row, stop_row)

    def scan(self, start_row=None, stop_row=None, versions=1):
        """Yield resolved ``(row, {qualifier: value})`` in row order.

        With ``versions > 1`` the dict values are lists of ``(ts, value)``
        newest-first.
        """
        return _resolve_rows(self._merged_cells(start_row, stop_row),
                             versions=versions)

    def get(self, row, versions=1):
        stop = row + b"\x00"
        for _, data in self.scan(row, stop, versions=versions):
            return data
        return None

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------
    @property
    def store_bytes(self):
        return self.memstore.size_bytes + sum(f.size_bytes for f in self.hfiles)

    def bytes_in_range(self, start_row=None, stop_row=None):
        total = sum(c.size_bytes() for c in self.memstore.scan(start_row, stop_row))
        total += sum(f.bytes_in_range(start_row, stop_row) for f in self.hfiles)
        return total

    def cell_count(self):
        return len(self.memstore) + sum(len(f) for f in self.hfiles)


# ----------------------------------------------------------------------
# Version/tombstone resolution.
# ----------------------------------------------------------------------
def _resolve(cells, versions=1, keep_deletes=True):
    """Resolve a sorted cell stream into surviving cells.

    Used by major compaction (``keep_deletes=False``) to rewrite history.
    """
    for row, row_cells in _group_by_row(cells):
        survivors = _resolve_row(row_cells, versions)
        if keep_deletes:
            yield from row_cells
        else:
            yield from survivors


def _group_by_row(cells):
    current_row, bucket = None, []
    for cell in cells:
        if cell.row != current_row:
            if bucket:
                yield current_row, bucket
            current_row, bucket = cell.row, []
        bucket.append(cell)
    if bucket:
        yield current_row, bucket


def _resolve_row(row_cells, versions):
    """Surviving put cells of one row, newest-first per qualifier."""
    row_delete_ts = -1
    for cell in row_cells:
        if cell.cell_type == CellType.DELETE_ROW and cell.ts > row_delete_ts:
            row_delete_ts = cell.ts
    survivors = []
    current_qual = object()
    col_delete_ts = -1
    taken = 0
    for cell in row_cells:
        if cell.qualifier != current_qual:
            current_qual = cell.qualifier
            col_delete_ts = -1
            taken = 0
        if cell.cell_type == CellType.DELETE_COLUMN:
            if cell.ts > col_delete_ts:
                col_delete_ts = cell.ts
            continue
        if cell.cell_type == CellType.DELETE_ROW:
            continue
        if cell.ts <= row_delete_ts or cell.ts <= col_delete_ts:
            continue
        if taken < versions:
            survivors.append(cell)
            taken += 1
    return survivors


def _resolve_rows(cells, versions=1):
    for row, row_cells in _group_by_row(cells):
        survivors = _resolve_row(row_cells, versions)
        if not survivors:
            continue
        if versions == 1:
            yield row, {c.qualifier: c.value for c in survivors}
        else:
            data = {}
            for c in survivors:
                data.setdefault(c.qualifier, []).append((c.ts, c.value))
            yield row, data
