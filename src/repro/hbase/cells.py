"""HBase cell model: KeyValues with type, timestamp and sort order.

HBase's on-disk and in-memory structures are all sorted runs of
``KeyValue`` entries ordered by ``(row, qualifier, timestamp DESC)``.
Newer versions sort *before* older ones so the first match wins.  Delete
tombstones shadow older puts of the same coordinates.
"""

from enum import IntEnum


class CellType(IntEnum):
    PUT = 0
    DELETE_COLUMN = 1   # delete all versions of one (row, qualifier)
    DELETE_ROW = 2      # delete every column of the row


class KeyValue:
    """One cell: the atom of the HBase data model."""

    __slots__ = ("row", "qualifier", "ts", "cell_type", "value")

    def __init__(self, row, qualifier, ts, cell_type, value=b""):
        if not isinstance(row, bytes):
            raise TypeError("row key must be bytes, got %r" % type(row))
        if not isinstance(qualifier, bytes):
            raise TypeError("qualifier must be bytes, got %r" % type(qualifier))
        self.row = row
        self.qualifier = qualifier
        self.ts = int(ts)
        self.cell_type = CellType(cell_type)
        self.value = value

    def sort_key(self):
        """Total order: row asc, qualifier asc, timestamp DESC, tombstones
        first within equal timestamps (so a delete at ts shadows a put at
        the same ts, matching HBase semantics)."""
        return (self.row, self.qualifier, -self.ts, -int(self.cell_type))

    @property
    def is_delete(self):
        return self.cell_type != CellType.PUT

    def size_bytes(self):
        """Approximate storage footprint (key + ts + type + value)."""
        return len(self.row) + len(self.qualifier) + 9 + len(self.value)

    def __eq__(self, other):
        return (isinstance(other, KeyValue)
                and self.sort_key() == other.sort_key()
                and self.value == other.value)

    def __lt__(self, other):
        return self.sort_key() < other.sort_key()

    def __repr__(self):
        return "KeyValue(%r, %r, ts=%d, %s, %dB)" % (
            self.row, self.qualifier, self.ts, self.cell_type.name,
            len(self.value))


ROW_TOMBSTONE_QUALIFIER = b""


def row_tombstone(row, ts):
    """A whole-row delete marker (sorts before any real qualifier)."""
    return KeyValue(row, ROW_TOMBSTONE_QUALIFIER, ts, CellType.DELETE_ROW)
