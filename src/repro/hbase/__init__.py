"""Simulated HBase: LSM regions, multi-version cells, random reads/writes."""

from repro.hbase.cells import CellType, KeyValue, row_tombstone
from repro.hbase.hfile import HFile
from repro.hbase.memstore import MemStore
from repro.hbase.region import Region
from repro.hbase.table import HBaseService, HTable

__all__ = [
    "CellType",
    "KeyValue",
    "row_tombstone",
    "HFile",
    "MemStore",
    "Region",
    "HBaseService",
    "HTable",
]
