"""Simulated MapReduce: jobs, splits, slot scheduling, makespan timing."""

from repro.mapreduce.job import (InputSplit, Job, JobResult, TaskContext,
                                 estimate_record_bytes, stable_hash)
from repro.mapreduce.runner import JobRunner

__all__ = [
    "InputSplit",
    "Job",
    "JobResult",
    "TaskContext",
    "estimate_record_bytes",
    "stable_hash",
    "JobRunner",
]
