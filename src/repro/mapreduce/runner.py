"""Deterministic MapReduce execution with a makespan-based time model.

Every task runs for real (Python functions over real data) inside a cost
scope, so its simulated duration is the sum of the I/O it charged plus CPU
row costs and a fixed task overhead.  The job's simulated run time is the
*makespan* of greedily list-scheduling those task durations onto the
cluster's map and reduce slots — the same "waves of tasks over slots"
shape real Hadoop exhibits — plus the job startup cost.

Fault tolerance mirrors Hadoop's task layer:

* a failed task attempt is retried up to ``profile.max_task_attempts``
  times with exponential backoff; the failed attempt's work *and* the
  backoff are charged to the ledger and added to the task's duration, so
  recovery is visible in a job's ``sim_seconds``;
* fatal injected faults (``kill`` — the client JVM dying) are never
  absorbed: they wrap into :class:`TaskFailedError` immediately;
* speculative execution launches a backup attempt for straggler tasks
  (duration above ``speculative_threshold`` × the job's median) and takes
  the earlier finisher, charging the duplicate work.

Injection points: ``mapreduce.map`` / ``mapreduce.reduce`` fire at the
start of every task attempt.

Parallel execution (``profile.workers > 1``): task attempts run
concurrently on the cluster's worker pool, each charging into a private
:class:`~repro.parallel.TaskRecorder`; the coordinator then replays the
recorders **in task order** inside per-task cost scopes, so results,
ledger charges and ``sim_seconds`` are byte-identical to the serial
path (docs/INTERNALS.md §6).  The pool is bypassed whenever semantics
are defined by global serial order: an active fault plan (faults fire on
global hit counts), an enabled tracer (span nesting), jobs marked
``properties={"parallel": False}`` (map functions that mutate shared
state in place, e.g. the HBase baselines), or any worker-thread failure
(the serial retry machinery then reruns the job from scratch — captured
charges from the abandoned parallel attempt are discarded, never
applied).
"""

import heapq
from collections import defaultdict

from repro.common.errors import FaultInjectedError, TaskFailedError
from repro.common.retry import RetryPolicy
from repro.mapreduce.job import (JobResult, TaskContext,
                                 estimate_record_bytes, stable_hash)
from repro.parallel import in_worker


def _makespan(durations, slots):
    """Greedy list-scheduling makespan of ``durations`` over ``slots``."""
    if not durations:
        return 0.0
    slots = max(1, slots)
    heap = [0.0] * min(slots, len(durations))
    heapq.heapify(heap)
    for duration in durations:
        start = heapq.heappop(heap)
        heapq.heappush(heap, start + duration)
    return max(heap)


def _reduce_sort_key(key):
    """Deterministic ordering for mixed-type reduce keys.

    ``repr`` alone interleaves types by their textual form ("10" < "b'a'"
    < "9"), so a retried partition with an extra key type could visit
    keys in a different relative order; grouping by type name first keeps
    the visit order stable under any key mix.
    """
    return (type(key).__name__, repr(key))


def _is_fatal(exc):
    return isinstance(exc, FaultInjectedError) and exc.fatal


class JobRunner:
    """Runs jobs against one simulated cluster."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.history = []

    def run(self, job):
        profile = self.cluster.profile
        counters = defaultdict(int)
        with self.cluster.tracer.span("job", job.name,
                                      splits=len(job.splits)) as job_span:
            with self.cluster.cost_scope("job:%s" % job.name) as job_scope:
                self.cluster.charge_fixed("mapreduce", "job_startup",
                                          profile.job_startup_s)
                map_entries, map_outputs = self._run_maps(job, counters)
                if job.is_map_only:
                    outputs = [record for _, records in map_outputs
                               for record in records]
                    shuffle_seconds = 0.0
                    shuffle_bytes = 0
                    reduce_entries = []
                else:
                    (shuffle_seconds, shuffle_bytes, reduce_entries,
                     outputs) = self._run_reduces(job, map_outputs, counters)

            map_durations = self._finish_durations(map_entries, counters)
            reduce_durations = self._finish_durations(reduce_entries,
                                                      counters)
            # A sharded table spreads its splits over ``shard_fanout``
            # independent region servers, each bringing its own task slots
            # and HBase region: the makespan sees fanout× the slots and
            # the (otherwise serial) HBase time is paid per-server.  Only
            # the time model changes — every task still runs and charges
            # the ledger exactly as on one server.
            fanout = max(1, int(job.properties.get("shard_fanout", 1)))
            map_seconds = _makespan(map_durations,
                                    profile.total_map_slots * fanout)
            reduce_seconds = _makespan(reduce_durations,
                                       profile.total_reduce_slots * fanout)
            # HBase region servers are a shared resource: the job pays its
            # total HBase time serially, on top of the parallel task phases.
            sim_seconds = (profile.job_startup_s + map_seconds
                           + shuffle_seconds + reduce_seconds
                           + job_scope.hbase_seconds / fanout)
            job_span.annotate(
                sim_seconds=round(sim_seconds, 6),
                map_seconds=round(map_seconds, 6),
                shuffle_seconds=round(shuffle_seconds, 6),
                reduce_seconds=round(reduce_seconds, 6),
                map_tasks=len(map_durations),
                reduce_tasks=len(reduce_durations),
                shuffle_bytes=shuffle_bytes,
                task_retries=counters.get("task_retries", 0),
                speculative_tasks=counters.get("speculative_tasks", 0))
        metrics = self.cluster.metrics
        metrics.incr("mapreduce.jobs")
        metrics.incr("mapreduce.tasks",
                     len(map_durations) + len(reduce_durations))
        if counters.get("task_retries"):
            metrics.incr("mapreduce.task_retries", counters["task_retries"])
        if counters.get("speculative_tasks"):
            metrics.incr("mapreduce.speculative_tasks",
                         counters["speculative_tasks"])
        result = JobResult(
            name=job.name,
            outputs=outputs,
            sim_seconds=sim_seconds,
            map_seconds=map_seconds,
            shuffle_seconds=shuffle_seconds,
            reduce_seconds=reduce_seconds,
            num_map_tasks=len(map_durations),
            num_reduce_tasks=len(reduce_durations),
            shuffle_bytes=shuffle_bytes,
            counters=dict(counters),
        )
        self.history.append(result)
        return result

    # ------------------------------------------------------------------
    # Task attempts: retry with charged backoff.
    # ------------------------------------------------------------------
    def _run_attempts(self, job, task_type, index, attempt_fn, counters,
                      describe):
        """Run one task to success, retrying failed attempts.

        Returns ``(output, base_seconds, penalty_seconds, ctx)`` where
        ``base_seconds`` is the successful attempt's duration (the part
        speculative execution can clamp) and ``penalty_seconds`` is the
        accumulated failed-attempt work plus backoff (it cannot: the
        retries really happened).
        """
        profile = self.cluster.profile
        policy = RetryPolicy.from_profile(profile)
        point = "mapreduce.%s" % task_type
        penalty = 0.0
        for attempt in policy.attempts():
            ctx = TaskContext(self.cluster, task_type, index)
            scope_label = "%s-%d.%d" % (task_type, index, attempt)
            with self.cluster.tracer.span(
                    "task", scope_label, job=job.name, task_type=task_type,
                    task=index, attempt=attempt) as span:
                with self.cluster.cost_scope(scope_label) as scope:
                    try:
                        fault = self.cluster.faults.hit(
                            point, job=job.name, task=index, attempt=attempt)
                        output = attempt_fn(ctx)
                    except Exception as exc:
                        failed = (scope.parallel_seconds
                                  + profile.task_overhead_s)
                        span.annotate(outcome="failed", error=str(exc))
                        if _is_fatal(exc) or policy.is_last(attempt):
                            raise TaskFailedError(describe(exc)) from exc
                        backoff = policy.backoff(attempt)
                        self.cluster.charge_fixed(
                            "mapreduce", "retry_backoff", backoff)
                        penalty += failed + backoff
                        counters["task_retries"] += 1
                        continue
                base = scope.parallel_seconds + profile.task_overhead_s
                if fault is not None and fault.kind == "slow":
                    extra = base * (fault.factor - 1.0)
                    self.cluster.charge_fixed("mapreduce", "straggler", extra)
                    base += extra
                span.annotate(outcome="ok", base_seconds=round(base, 6),
                              penalty_seconds=round(penalty, 6))
            return output, base, penalty, ctx
        raise AssertionError("unreachable: final attempt raises")

    # ------------------------------------------------------------------
    # Task dispatch: parallel capture/replay, or the serial retry loop.
    # ------------------------------------------------------------------
    def _execute_tasks(self, job, task_type, specs, counters):
        """Run ``(index, attempt_fn, describe)`` specs to completion.

        Returns ``[(output, base, penalty, ctx), ...]`` in spec order.
        """
        results = self._try_parallel(job, task_type, specs)
        if results is None:
            results = [
                self._run_attempts(job, task_type, index, attempt_fn,
                                   counters, describe)
                for index, attempt_fn, describe in specs]
        return results

    def _try_parallel(self, job, task_type, specs):
        """Run all specs concurrently; None means "use the serial path".

        Workers execute the attempt functions under per-task capture; the
        coordinator then replays each task's recorder in task order inside
        the same span/scope structure the serial path builds, so ledger
        contents, scope attribution and task durations are byte-identical.
        If any worker raised, every recorder is discarded unapplied and
        the caller reruns serially — the retry machinery then observes the
        exact charge sequence it would have seen without a pool.
        """
        cluster = self.cluster
        pool = cluster.pool
        if (len(specs) <= 1 or not pool.parallel or in_worker()
                or not job.properties.get("parallel", True)
                or cluster.faults.armed or cluster.tracer.enabled):
            return None

        def make_thunk(index, attempt_fn):
            def thunk():
                ctx = TaskContext(cluster, task_type, index)
                with cluster.capture() as recorder:
                    output = attempt_fn(ctx)
                return output, recorder, ctx
            return thunk

        outcomes = pool.map([make_thunk(index, attempt_fn)
                             for index, attempt_fn, _ in specs])
        if any(outcome.error is not None for outcome in outcomes):
            return None
        profile = cluster.profile
        results = []
        for (index, _, _), outcome in zip(specs, outcomes):
            output, recorder, ctx = outcome.value
            scope_label = "%s-%d.%d" % (task_type, index, 1)
            with cluster.tracer.span(
                    "task", scope_label, job=job.name, task_type=task_type,
                    task=index, attempt=1) as span:
                with cluster.cost_scope(scope_label) as scope:
                    recorder.replay(cluster)
                base = scope.parallel_seconds + profile.task_overhead_s
                span.annotate(outcome="ok", base_seconds=round(base, 6),
                              penalty_seconds=0.0)
            results.append((output, base, 0.0, ctx))
        return results

    def _finish_durations(self, entries, counters):
        """(base, penalty) pairs -> per-task durations, with speculation.

        A straggler (base duration far above the job's median) gets a
        speculative backup attempt: the task effectively finishes at
        ~median time, the duplicate work is charged, and the retry
        penalty — real failed work — is never clamped.
        """
        profile = self.cluster.profile
        bases = [base for base, _ in entries]
        durations = []
        speculate = (profile.speculative_execution and len(entries) >= 2)
        median = sorted(bases)[len(bases) // 2] if speculate else 0.0
        for base, penalty in entries:
            if speculate and median > 0.0 \
                    and base > profile.speculative_threshold * median:
                backup = median + profile.task_overhead_s
                if backup < base:
                    self.cluster.charge_fixed("mapreduce", "speculative",
                                              backup)
                    counters["speculative_tasks"] += 1
                    base = backup
            durations.append(base + penalty)
        return durations

    # ------------------------------------------------------------------
    def _run_maps(self, job, counters):
        specs = []
        for index, split in enumerate(job.splits):
            def attempt_fn(ctx, split=split):
                records = list(job.map_fn(split, ctx))
                self.cluster.charge_cpu_rows(len(records))
                if job.combiner_fn is not None and not job.is_map_only:
                    records = self._combine(job, records, ctx)
                return records

            def describe(exc, index=index):
                return ("map task %d of %s failed: %s"
                        % (index, job.name, exc))

            specs.append((index, attempt_fn, describe))
        entries = []
        outputs = []
        results = self._execute_tasks(job, "map", specs, counters)
        for (index, _, _), (records, base, penalty, ctx) in zip(specs,
                                                                results):
            entries.append((base, penalty))
            outputs.append((index, records))
            for key, val in ctx.counters.items():
                counters[key] += val
        return entries, outputs

    def _combine(self, job, records, ctx):
        grouped = defaultdict(list)
        for key, value in records:
            grouped[key].append(value)
        combined = []
        for key in grouped:
            combined.extend(job.combiner_fn(key, grouped[key], ctx))
        return combined

    # ------------------------------------------------------------------
    def _run_reduces(self, job, map_outputs, counters):
        num_reducers = max(1, job.num_reducers)
        partitions = [defaultdict(list) for _ in range(num_reducers)]
        shuffle_records = 0
        for _, records in map_outputs:
            shuffle_records += len(records)
            for key, value in records:
                partitions[stable_hash(key) % num_reducers][key].append(value)
        all_records = [r for _, records in map_outputs for r in records]
        shuffle_bytes = estimate_record_bytes(all_records)
        charge = self.cluster.charge_shuffle(shuffle_bytes)
        self.cluster.charge_cpu_rows(shuffle_records)  # sort cost
        shuffle_seconds = charge.seconds

        specs = []
        for index, partition in enumerate(partitions):
            if not partition and num_reducers > 1:
                continue
            failing = {}

            def attempt_fn(ctx, partition=partition, failing=failing):
                task_out = []
                for key in sorted(partition, key=_reduce_sort_key):
                    failing["key"] = key
                    task_out.extend(job.reduce_fn(key, partition[key], ctx))
                self.cluster.charge_cpu_rows(len(task_out))
                return task_out

            def describe(exc, index=index, failing=failing):
                return ("reduce task %d of %s failed at key %r: %s"
                        % (index, job.name, failing.get("key"), exc))

            specs.append((index, attempt_fn, describe))
        entries = []
        outputs = []
        for task_out, base, penalty, ctx in self._execute_tasks(
                job, "reduce", specs, counters):
            entries.append((base, penalty))
            outputs.extend(task_out)
            for key, val in ctx.counters.items():
                counters[key] += val
        return shuffle_seconds, shuffle_bytes, entries, outputs
