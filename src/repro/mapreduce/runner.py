"""Deterministic MapReduce execution with a makespan-based time model.

Every task runs for real (Python functions over real data) inside a cost
scope, so its simulated duration is the sum of the I/O it charged plus CPU
row costs and a fixed task overhead.  The job's simulated run time is the
*makespan* of greedily list-scheduling those task durations onto the
cluster's map and reduce slots — the same "waves of tasks over slots"
shape real Hadoop exhibits — plus the job startup cost.
"""

import heapq
from collections import defaultdict

from repro.common.errors import TaskFailedError
from repro.mapreduce.job import (JobResult, TaskContext,
                                 estimate_record_bytes, stable_hash)


def _makespan(durations, slots):
    """Greedy list-scheduling makespan of ``durations`` over ``slots``."""
    if not durations:
        return 0.0
    slots = max(1, slots)
    heap = [0.0] * min(slots, len(durations))
    heapq.heapify(heap)
    for duration in durations:
        start = heapq.heappop(heap)
        heapq.heappush(heap, start + duration)
    return max(heap)


class JobRunner:
    """Runs jobs against one simulated cluster."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.history = []

    def run(self, job):
        profile = self.cluster.profile
        counters = defaultdict(int)
        with self.cluster.cost_scope("job:%s" % job.name) as job_scope:
            self.cluster.charge_fixed("mapreduce", "job_startup",
                                      profile.job_startup_s)
            map_durations, map_outputs = self._run_maps(job, counters)
            if job.is_map_only:
                outputs = [record for _, records in map_outputs
                           for record in records]
                shuffle_seconds = 0.0
                shuffle_bytes = 0
                reduce_durations = []
            else:
                (shuffle_seconds, shuffle_bytes, reduce_durations,
                 outputs) = self._run_reduces(job, map_outputs, counters)

        map_seconds = _makespan(map_durations, profile.total_map_slots)
        reduce_seconds = _makespan(reduce_durations,
                                   profile.total_reduce_slots)
        # HBase region servers are a shared resource: the job pays its
        # total HBase time serially, on top of the parallel task phases.
        sim_seconds = (profile.job_startup_s + map_seconds
                       + shuffle_seconds + reduce_seconds
                       + job_scope.hbase_seconds)
        result = JobResult(
            name=job.name,
            outputs=outputs,
            sim_seconds=sim_seconds,
            map_seconds=map_seconds,
            shuffle_seconds=shuffle_seconds,
            reduce_seconds=reduce_seconds,
            num_map_tasks=len(map_durations),
            num_reduce_tasks=len(reduce_durations),
            shuffle_bytes=shuffle_bytes,
            counters=dict(counters),
        )
        self.history.append(result)
        return result

    # ------------------------------------------------------------------
    def _run_maps(self, job, counters):
        durations = []
        outputs = []
        for index, split in enumerate(job.splits):
            ctx = TaskContext(self.cluster, "map", index)
            with self.cluster.cost_scope("map-%d" % index) as scope:
                try:
                    records = list(job.map_fn(split, ctx))
                except Exception as exc:
                    raise TaskFailedError(
                        "map task %d of %s failed: %s"
                        % (index, job.name, exc)) from exc
                self.cluster.charge_cpu_rows(len(records))
                if job.combiner_fn is not None and not job.is_map_only:
                    records = self._combine(job, records, ctx)
            durations.append(scope.parallel_seconds
                             + self.cluster.profile.task_overhead_s)
            outputs.append((index, records))
            for key, val in ctx.counters.items():
                counters[key] += val
        return durations, outputs

    def _combine(self, job, records, ctx):
        grouped = defaultdict(list)
        for key, value in records:
            grouped[key].append(value)
        combined = []
        for key in grouped:
            combined.extend(job.combiner_fn(key, grouped[key], ctx))
        return combined

    # ------------------------------------------------------------------
    def _run_reduces(self, job, map_outputs, counters):
        num_reducers = max(1, job.num_reducers)
        partitions = [defaultdict(list) for _ in range(num_reducers)]
        shuffle_records = 0
        for _, records in map_outputs:
            shuffle_records += len(records)
            for key, value in records:
                partitions[stable_hash(key) % num_reducers][key].append(value)
        all_records = [r for _, records in map_outputs for r in records]
        shuffle_bytes = estimate_record_bytes(all_records)
        charge = self.cluster.charge_shuffle(shuffle_bytes)
        self.cluster.charge_cpu_rows(shuffle_records)  # sort cost
        shuffle_seconds = charge.seconds

        durations = []
        outputs = []
        for index, partition in enumerate(partitions):
            if not partition and num_reducers > 1:
                continue
            ctx = TaskContext(self.cluster, "reduce", index)
            with self.cluster.cost_scope("reduce-%d" % index) as scope:
                task_out = []
                for key in sorted(partition, key=repr):
                    try:
                        task_out.extend(
                            job.reduce_fn(key, partition[key], ctx))
                    except Exception as exc:
                        raise TaskFailedError(
                            "reduce task %d of %s failed at key %r: %s"
                            % (index, job.name, key, exc)) from exc
                self.cluster.charge_cpu_rows(len(task_out))
            durations.append(scope.parallel_seconds
                             + self.cluster.profile.task_overhead_s)
            outputs.extend(task_out)
            for key, val in ctx.counters.items():
                counters[key] += val
        return shuffle_seconds, shuffle_bytes, durations, outputs
