"""Job/task model for the simulated MapReduce engine."""

import zlib
from dataclasses import dataclass, field


@dataclass
class InputSplit:
    """One unit of map-side work.

    ``payload`` is whatever the InputFormat wants to hand its mapper (a
    file path, an ORC stripe range, an HBase key range...).  ``size_bytes``
    is the scheduler's locality/size hint.
    """

    payload: object
    size_bytes: int = 0
    label: str = ""


class TaskContext:
    """Passed to every map/reduce function: counters + cluster access."""

    def __init__(self, cluster, task_type, task_index):
        self.cluster = cluster
        self.task_type = task_type
        self.task_index = task_index
        self.counters = {}

    def incr(self, counter, amount=1):
        self.counters[counter] = self.counters.get(counter, 0) + amount


@dataclass
class Job:
    """A MapReduce job specification.

    * ``map_fn(split, ctx)`` yields ``(key, value)`` pairs when the job has
      a reducer, or arbitrary output records for map-only jobs.
    * ``reduce_fn(key, values, ctx)`` yields output records.
    * ``combiner_fn`` (optional) has reduce semantics and runs per map task.
    """

    name: str
    splits: list
    map_fn: object
    reduce_fn: object = None
    combiner_fn: object = None
    num_reducers: int = 1
    properties: dict = field(default_factory=dict)

    @property
    def is_map_only(self):
        return self.reduce_fn is None


@dataclass
class JobResult:
    """Outputs plus the simulated cost breakdown of one job run."""

    name: str
    outputs: list
    sim_seconds: float
    map_seconds: float
    shuffle_seconds: float
    reduce_seconds: float
    num_map_tasks: int
    num_reduce_tasks: int
    shuffle_bytes: int
    counters: dict


def stable_hash(key):
    """Deterministic partitioning hash (repr-based, seed-independent)."""
    return zlib.crc32(repr(key).encode("utf-8", "backslashreplace"))


def estimate_record_bytes(records):
    """Cheap serialized-size estimate: sample-pickle up to 64 records."""
    import pickle

    if not records:
        return 0
    sample = records[:64]
    sampled = sum(len(pickle.dumps(r, protocol=4)) for r in sample)
    return int(sampled / len(sample) * len(records))
