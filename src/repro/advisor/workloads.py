"""Seeded canned workloads exercising the advisor end-to-end.

Three deterministic workload shapes — scan-heavy, update-heavy and
mixed HTAP (through a :class:`DualTableServer` with competing tenants)
— each built to trip a known, distinct set of advisor findings.  The
CI ``advisor-smoke`` job, ``scripts/export_dashboard.py`` and
``tests/test_advisor.py`` all run these and assert the finding sets in
:data:`EXPECTED_FINDINGS`, byte-identical across two runs, worker
counts and execution engines.

Everything is seeded through :mod:`repro.common.rng`; no wall-clock
value ever reaches a statement or a finding.
"""

from repro.cluster import ClusterProfile
from repro.common.rng import make_rng

#: canonical workload order (dashboards, CI artifacts, tests).
WORKLOAD_NAMES = ("scan_heavy", "update_heavy", "mixed")

#: the finding set each canned workload must produce, as sorted
#: ``(code, subject)`` pairs — the advisor acceptance oracle.
EXPECTED_FINDINGS = {
    # Tiny tables make the cost model's I/O-only estimate drown in the
    # fixed startup overhead, so every canned workload also carries a
    # cost-model-drift finding — a real property of this scale, and the
    # positive arm of the drift test coverage.
    "scan_heavy": [
        ("cost-model-drift", "events"),
        ("read-factor-mismatch", "events"),
        ("scan-heavy-dirty", "events"),
    ],
    "update_heavy": [
        ("overwrite-plan-regret", "audit_log"),
        ("cost-model-drift", "accounts"),
        ("update-heavy-autocompact-off", "accounts"),
    ],
    "mixed": [
        ("cost-model-drift", "orders_ht"),
        ("mixed-htap", "orders_ht"),
        ("read-factor-mismatch", "orders_ht"),
        ("tenant-pressure", "tenant:analytics"),
        ("tenant-pressure", "tenant:ops"),
    ],
}


def build_session(workers=1, engine=None, batch_rows=None):
    """A fresh laptop-profile session for one canned workload."""
    from repro.hive import HiveSession

    profile = ClusterProfile.laptop(workers=max(1, int(workers)))
    return HiveSession(profile=profile, engine=engine,
                       batch_rows=batch_rows)


def _load(session, table, n_rows, seed, storage_props=""):
    """Create one small multi-file DualTable and bulk-load seeded rows."""
    session.execute(
        "CREATE TABLE %s (id INT, v INT, note STRING) "
        "STORED AS DUALTABLE TBLPROPERTIES ("
        "'orc.rows_per_file' = 64, 'orc.stripe_rows' = 16%s)"
        % (table, storage_props))
    rng = make_rng("advisor-workload", table, seed)
    session.load_rows(table, [(i, rng.randrange(1000), "n%04d" % i)
                              for i in range(n_rows)])


class _Sampler:
    """Per-statement cumulative counter series for the dashboard."""

    def __init__(self, session, tables):
        self.session = session
        self.tables = tuple(tables)
        self.series = {table: {"scans": [], "dmls": []}
                       for table in self.tables}

    def sample(self):
        counters = self.session.cluster.metrics.counters
        for table in self.tables:
            series = self.series[table]
            series["scans"].append(
                counters.get("dualtable.scans.%s" % table, 0))
            series["dmls"].append(
                counters.get("dualtable.dml.%s" % table, 0))

    def run(self, sql):
        result = self.session.execute(sql)
        self.sample()
        return result


def run_scan_heavy(session, seed=0):
    """Analytics-shaped: many scans over a table with stranded deltas.

    A handful of UPDATEs leave attached deltas, AUTOCOMPACT stays off,
    then a long scan streak pays union-read overhead on every query —
    the ``scan-heavy-dirty`` shape (the EWMA also learns reads-per-DML
    far above the declared ``read_factor``).
    """
    _load(session, "events", 320, seed)
    sampler = _Sampler(session, ["events"])
    rng = make_rng("advisor-scan-heavy", seed)
    for i in range(3):
        sampler.run("UPDATE events SET v = v + %d WHERE id %% 80 = %d"
                    % (i + 1, rng.randrange(80)))
    for _ in range(30):
        threshold = rng.randrange(900)
        sampler.run("SELECT count(*) FROM events WHERE v > %d"
                    % threshold)
    return {"session": session, "server": None,
            "series": sampler.series, "workload": "scan_heavy"}


def run_update_heavy(session, seed=0):
    """OLTP-shaped: a churn table with AUTOCOMPACT off, plus a table
    pinned to the forced OVERWRITE plan where EDIT predicts cheaper
    (``overwrite-plan-regret``)."""
    _load(session, "accounts", 256, seed)
    _load(session, "audit_log", 192, seed,
          storage_props=", 'dualtable.mode' = 'overwrite'")
    sampler = _Sampler(session, ["accounts", "audit_log"])
    rng = make_rng("advisor-update-heavy", seed)
    for i in range(10):
        sampler.run("UPDATE accounts SET v = v + %d WHERE id %% 64 = %d"
                    % (i + 1, rng.randrange(64)))
    for i in range(2):
        sampler.run("UPDATE audit_log SET v = %d WHERE id = %d"
                    % (i, rng.randrange(192)))
    sampler.run("SELECT count(*) FROM accounts")
    return {"session": session, "server": None,
            "series": sampler.series, "workload": "update_heavy"}


def run_mixed(session, seed=0):
    """HTAP-shaped, through the server: an ``analytics`` tenant scans
    while an ``ops`` tenant mutates the same table, with an arrival
    burst past ``max_queue`` so admission control sheds — the
    ``mixed-htap`` + ``tenant-pressure`` shape."""
    from repro.server import Arrival, DualTableServer

    _load(session, "orders_ht", 320, seed)
    server = DualTableServer(engine=session, concurrency=2, max_queue=3,
                             seed=seed)
    analytics = server.connect(tenant="analytics")
    ops = server.connect(tenant="ops")
    rng = make_rng("advisor-mixed", seed)
    arrivals = []
    clock = 0.0
    for i in range(12):
        clock += 40.0
        arrivals.append(Arrival(
            time=clock, session=analytics,
            sql="SELECT count(*) FROM orders_ht WHERE v > %d"
                % rng.randrange(900)))
        if i % 2 == 0:
            arrivals.append(Arrival(
                time=clock + 1.0, session=ops,
                sql="UPDATE orders_ht SET v = v + 1 WHERE id %% 80 = %d"
                    % rng.randrange(80)))
    # The burst: both tenants flood one instant, far past max_queue=3.
    for i in range(10):
        arrivals.append(Arrival(
            time=clock + 10.0,
            session=analytics if i % 2 else ops,
            sql="SELECT count(*) FROM orders_ht WHERE id = %d"
                % rng.randrange(320)))
    server.run(arrivals)
    sampler = _Sampler(session, ["orders_ht"])
    sampler.sample()
    return {"session": session, "server": server,
            "series": sampler.series, "workload": "mixed"}


RUNNERS = {"scan_heavy": run_scan_heavy,
           "update_heavy": run_update_heavy,
           "mixed": run_mixed}


def run_workload(name, seed=0, workers=1, engine=None):
    """Build a fresh session and run one canned workload by name."""
    if name not in RUNNERS:
        raise ValueError("unknown workload %r (choose from %s)"
                         % (name, "/".join(WORKLOAD_NAMES)))
    session = build_session(workers=workers, engine=engine)
    return RUNNERS[name](session, seed=seed)
