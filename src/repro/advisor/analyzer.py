"""The workload analyzer and actuator.

:class:`WorkloadAdvisor` replays the per-table profiles (and the
server's admission counters) through a fixed rule set and emits sorted
:class:`~repro.advisor.findings.Finding`s.  Rules are deliberately
simple threshold checks — the value is in closing the loop, not in the
sophistication of any one rule — and every threshold is a named module
constant so tests and docs reference the same numbers.

The actuator half (:func:`apply_findings`) executes each finding's
remediation statements through the session, in finding order, each
statement at most once.  Remediations are ordinary SQL (``ALTER TABLE
... SET ...``, ``COMPACT TABLE ...``), so applying them is charged,
traced and crash-safe exactly like user statements.
"""

from repro.advisor.findings import Finding
from repro.advisor.profiles import build_profiles

#: scans-per-DML at (or above) which a table reads as scan-heavy.
SCAN_HEAVY_RATIO = 8.0
#: scans-per-DML at (or below) which a table reads as update-heavy.
UPDATE_HEAVY_RATIO = 2.0
#: minimum mutations before the read/write-mix rules speak up.
MIN_DMLS = 3
#: minimum scans before the scan-side rules speak up.
MIN_SCANS = 8
#: cost-audit mean relative error above which the model has drifted
#: (examples/profile_update_sweep.py holds the healthy regime ~6%).
DRIFT_REL_ERROR = 0.25
#: minimum audited statements before drift is diagnosable.
MIN_AUDITS = 3
#: EWMA reads-per-DML vs declared read_factor mismatch factor.
READ_FACTOR_MISMATCH = 2.0
#: minimum LOOKUP-eligible statements forced through MR before the
#: routing rule speaks up (``SET dualtable.plan = scan`` left on).
MIN_LOOKUP_ELIGIBLE = 3
#: hottest-shard heat vs median-shard heat above which a sharded table
#: reads as skewed (heat = routed lookups + DML delta entries since the
#: last rebalance).
SHARD_SKEW_RATIO = 3.0
#: minimum hottest-shard heat before the skew rule speaks up — a handful
#: of point reads on a cold table is placement noise, not a hot spot.
MIN_SHARD_HEAT = 8


class WorkloadAdvisor:
    """Rule-based analyzer over table profiles + server counters."""

    def __init__(self, session):
        self.session = session

    # ------------------------------------------------------------------
    def analyze(self):
        """All current findings, sorted by (severity, subject, code)."""
        findings = []
        for profile in build_profiles(self.session):
            findings.extend(self._table_findings(profile))
        findings.extend(self._server_findings())
        return sorted(findings, key=lambda f: f.sort_key())

    # -- per-table rules -----------------------------------------------
    def _table_findings(self, p):
        out = []
        scan_heavy = (p.scans >= MIN_SCANS
                      and p.scan_dml_ratio >= SCAN_HEAVY_RATIO)
        update_heavy = (p.dmls >= MIN_DMLS
                        and p.scan_dml_ratio <= UPDATE_HEAVY_RATIO)
        dirty = p.attached_bytes > 0 or p.deltas_applied > 0

        if scan_heavy and dirty and not p.autocompact_on:
            out.append(Finding(
                code="scan-heavy-dirty",
                severity="warn",
                subject=p.table,
                summary=("table is scan-heavy (%.1f scans/DML) but "
                         "attached deltas tax every read (%d bytes "
                         "pending, %d delta applications since compact)"
                         % (p.scan_dml_ratio, p.attached_bytes,
                            p.deltas_applied)),
                evidence={"scans": p.scans, "dmls": p.dmls,
                          "scan_dml_ratio": p.scan_dml_ratio,
                          "attached_bytes": p.attached_bytes,
                          "deltas_applied": p.deltas_applied,
                          "batches_fast": p.batches_fast,
                          "batches_overlay": p.batches_overlay,
                          "batches_row_fallback": p.batches_row_fallback},
                remediation=[
                    "ALTER TABLE %s SET AUTOCOMPACT (ON)" % p.table,
                    "COMPACT TABLE %s" % p.table,
                ]))
        if update_heavy and not p.autocompact_on:
            out.append(Finding(
                code="update-heavy-autocompact-off",
                severity="warn",
                subject=p.table,
                summary=("update-heavy table (%d DMLs vs %d scans) is "
                         "accumulating deltas with AUTOCOMPACT OFF"
                         % (p.dmls, p.scans)),
                evidence={"scans": p.scans, "dmls": p.dmls,
                          "updates": p.updates, "deletes": p.deletes,
                          "attached_bytes": p.attached_bytes},
                remediation=[
                    "ALTER TABLE %s SET AUTOCOMPACT (ON)" % p.table,
                ]))
        if (p.scans >= MIN_SCANS and p.dmls >= MIN_DMLS
                and UPDATE_HEAVY_RATIO < p.scan_dml_ratio
                < SCAN_HEAVY_RATIO):
            out.append(Finding(
                code="mixed-htap",
                severity="info",
                subject=p.table,
                summary=("mixed operational+analytic shape (%d scans, "
                         "%d DMLs): keep the cost model in charge and "
                         "compaction autonomous"
                         % (p.scans, p.dmls)),
                evidence={"scans": p.scans, "dmls": p.dmls,
                          "scan_dml_ratio": p.scan_dml_ratio},
                remediation=(
                    [] if p.autocompact_on else
                    ["ALTER TABLE %s SET AUTOCOMPACT (ON)" % p.table])))
        out.extend(self._read_factor_rule(p))
        out.extend(self._drift_rule(p))
        out.extend(self._regret_rule(p))
        out.extend(self._lookup_routing_rule(p))
        out.extend(self._shard_skew_rule(p))
        return out

    def _shard_skew_rule(self, p):
        """One region server absorbing most of a sharded table's traffic
        — heat is routed LOOKUPs plus DML delta entries since the last
        rebalance, so a skewed key range shows up here long before the
        ledger does."""
        if p.shard_count < 2 or not p.shard_heats:
            return []
        heats = sorted(p.shard_heats)
        hottest = heats[-1]
        median = heats[len(heats) // 2] if len(heats) % 2 \
            else (heats[len(heats) // 2 - 1] + heats[len(heats) // 2]) / 2
        if hottest < MIN_SHARD_HEAT or hottest <= SHARD_SKEW_RATIO * median:
            return []
        hot_shard = list(p.shard_heats).index(hottest)
        return [Finding(
            code="shard-skew",
            severity="warn",
            subject=p.table,
            summary=("shard %d absorbs heat %d vs median %.1f across %d "
                     "shards (>%.0fx) — rebalance to move its hottest "
                     "bucket to the coldest shard"
                     % (hot_shard, hottest, median, p.shard_count,
                        SHARD_SKEW_RATIO)),
            evidence={"shard_heats": list(p.shard_heats),
                      "hot_shard": hot_shard,
                      "hottest": hottest,
                      "median": median,
                      "ratio_threshold": SHARD_SKEW_RATIO},
            remediation=[
                "ALTER TABLE %s REBALANCE" % p.table,
            ])]

    def _lookup_routing_rule(self, p):
        """PK point reads routed through MapReduce despite a cheaper
        LOOKUP plan — the per-statement counter only increments when the
        planner judged the statement eligible *and* LOOKUP-cheaper but
        the session (or cost verdict this close to the crossover) sent
        it to the scan path anyway."""
        if p.lookup_eligible_scans < MIN_LOOKUP_ELIGIBLE:
            return []
        return [Finding(
            code="lookup-eligible-scan",
            severity="warn",
            subject=p.table,
            summary=("%d PRIMARY-KEY point reads paid MapReduce startup "
                     "although the LOOKUP plan was eligible (%d lookups "
                     "actually taken) — let the cost model route reads"
                     % (p.lookup_eligible_scans, p.lookups)),
            evidence={"lookup_eligible_scans": p.lookup_eligible_scans,
                      "lookups": p.lookups,
                      "lookup_fallbacks": p.lookup_fallbacks},
            remediation=[
                "SET dualtable.plan = cost",
            ])]

    def _read_factor_rule(self, p):
        if p.dmls < MIN_DMLS:
            return []
        observed = max(1, int(round(p.reads_per_dml)))
        declared = max(1, p.read_factor)
        ratio = max(observed, declared) / max(1, min(observed, declared))
        if ratio < READ_FACTOR_MISMATCH:
            return []
        return [Finding(
            code="read-factor-mismatch",
            severity="warn",
            subject=p.table,
            summary=("declared read_factor %d but the EWMA observes "
                     "%.1f reads per DML — the cost model is weighing "
                     "reads with the wrong k"
                     % (declared, p.reads_per_dml)),
            evidence={"read_factor": declared,
                      "reads_per_dml": p.reads_per_dml,
                      "observed_k": observed},
            remediation=[
                "ALTER TABLE %s SET DUALTABLE (read_factor = %d)"
                % (p.table, observed),
            ])]

    def _drift_rule(self, p):
        if p.audits < MIN_AUDITS or p.rel_error_mean <= DRIFT_REL_ERROR:
            return []
        return [Finding(
            code="cost-model-drift",
            severity="warn",
            subject=p.table,
            summary=("cost-model audit drift: mean relative error %.1f%% "
                     "over %d audited statements (threshold %.0f%%) — "
                     "predictions no longer track observed run time"
                     % (100 * p.rel_error_mean, p.audits,
                        100 * DRIFT_REL_ERROR)),
            evidence={"audits": p.audits,
                      "rel_error_mean": p.rel_error_mean,
                      "rel_error_max": p.rel_error_max,
                      "threshold": DRIFT_REL_ERROR},
            remediation=[])]

    def _regret_rule(self, p):
        if p.mode != "overwrite" or p.overwrite_regret == 0:
            return []
        return [Finding(
            code="overwrite-plan-regret",
            severity="critical",
            subject=p.table,
            summary=("forced OVERWRITE plan chosen %d times where the "
                     "EDIT plan predicted cheaper (%.3f predicted "
                     "seconds wasted) — hand the choice back to the "
                     "cost model"
                     % (p.overwrite_regret, p.regret_seconds)),
            evidence={"overwrite_regret": p.overwrite_regret,
                      "regret_seconds": p.regret_seconds,
                      "mode": p.mode,
                      "plan_forced": p.plan_forced},
            remediation=[
                "ALTER TABLE %s SET DUALTABLE (mode = 'cost')"
                % p.table,
            ])]

    # -- server rules ----------------------------------------------------
    def _server_findings(self):
        server = getattr(self.session, "server", None)
        if server is None:
            return []
        counters = self.session.cluster.metrics.counters
        out = []
        tenants = sorted({s.tenant for s in server.sessions.values()})
        for tenant in tenants:
            shed = counters.get("server.shed.%s" % tenant, 0)
            timeouts = counters.get("server.timeouts.%s" % tenant, 0)
            if shed == 0 and timeouts == 0:
                continue
            out.append(Finding(
                code="tenant-pressure",
                severity="warn",
                subject="tenant:%s" % tenant,
                summary=("tenant %s lost statements to admission "
                         "control: %d shed, %d timed out — raise "
                         "max_queue/concurrency or pace the client"
                         % (tenant, shed, timeouts)),
                evidence={"shed": shed, "timeouts": timeouts,
                          "max_queue": server.admission.max_queue,
                          "concurrency": server.concurrency},
                remediation=[]))
        return out


def apply_findings(session, findings):
    """Execute remediation statements; returns (sql, result) pairs.

    Statements run in finding order, each distinct statement once, so
    the applied sequence is as deterministic as the findings are.
    """
    applied = []
    seen = set()
    for finding in findings:
        for sql in finding.remediation:
            if sql in seen:
                continue
            seen.add(sql)
            applied.append((sql, session.execute(sql)))
    return applied
