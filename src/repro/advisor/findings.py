"""Typed advisor findings.

A :class:`Finding` is one diagnosed workload/configuration mismatch:
a stable ``code`` (the taxonomy lives in docs/INTERNALS.md §11), a
severity, the subject it is about (a table name, ``tenant:<name>`` or
``server``), human-readable summary text, the *evidence* — the metric
values that triggered the rule, so a finding is auditable — and zero or
more ``remediation`` statements the actuator can execute verbatim
(``ANALYZE WORKLOAD APPLY``).

Determinism contract: everything in a finding derives from registry
counters/histograms and handler configuration — all of which are
byte-identical across worker counts and execution engines — and
floats are rounded before they are stored, so two identical workloads
produce identical findings (and identical JSON).
"""

from dataclasses import dataclass, field

#: severity order: most severe first (also the sort order).
SEVERITIES = ("critical", "warn", "info")

#: columns of ``SHOW ADVISOR`` / ``ANALYZE WORKLOAD`` result rows.
FINDING_COLUMNS = ("code", "severity", "subject", "summary", "remediation")


def _round(value):
    if isinstance(value, float):
        return round(value, 6)
    return value


@dataclass
class Finding:
    """One diagnosed workload finding with evidence and remediation."""

    code: str
    severity: str
    subject: str
    summary: str
    evidence: dict = field(default_factory=dict)
    remediation: list = field(default_factory=list)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError("bad severity %r (choose from %s)"
                             % (self.severity, "/".join(SEVERITIES)))
        self.evidence = {key: _round(value)
                         for key, value in self.evidence.items()}

    def sort_key(self):
        return (SEVERITIES.index(self.severity), self.subject, self.code)

    def row(self):
        return (self.code, self.severity, self.subject, self.summary,
                "; ".join(self.remediation))

    def as_dict(self):
        return {"code": self.code,
                "severity": self.severity,
                "subject": self.subject,
                "summary": self.summary,
                "evidence": {key: self.evidence[key]
                             for key in sorted(self.evidence)},
                "remediation": list(self.remediation)}
