"""Per-table workload profiles derived from the metrics registry.

A :class:`TableProfile` condenses the always-on per-table counters and
histograms the PR-7 instrumentation records (scans, DML mix, plan
choices, scanned/rewritten bytes, delta churn, cost-audit errors) plus
the PR-4 EWMA reads-per-DML estimate into the shape the analyzer rules
pattern-match against.

Profiles are *read-only* views: building one performs no charged work
and mutates nothing but the shared :class:`StatsCollector` EWMA (which
the maintenance daemon advances from the same counters anyway — the
collector is idempotent over unchanged counter values).

Determinism: every input is a registry counter/histogram (byte-identical
across worker counts and engines, PR-3/PR-5) or static handler
configuration, so two identical workloads yield identical profiles.
"""

from dataclasses import dataclass, field


def _hist_summary(hist):
    """Plain-dict summary of a registry histogram (None-safe)."""
    if hist is None or hist.count == 0:
        return {"count": 0, "sum": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0}
    return {"count": hist.count, "sum": round(hist.total, 6),
            "mean": round(hist.mean, 6),
            "p50": round(hist.p50, 6), "p95": round(hist.p95, 6),
            "p99": round(hist.p99, 6)}


@dataclass
class TableProfile:
    """Observed workload shape of one DualTable."""

    table: str
    storage: str = "dualtable"
    # -- configuration (the knobs the actuator can turn) ---------------
    mode: str = "cost"
    read_factor: int = 1
    autocompact_on: bool = False
    # -- read/write mix ------------------------------------------------
    scans: int = 0
    dmls: int = 0
    updates: int = 0
    deletes: int = 0
    # -- delta churn / bytes -------------------------------------------
    deltas_applied: int = 0
    batches_fast: int = 0
    batches_overlay: int = 0
    batches_row_fallback: int = 0
    attached_bytes: int = 0
    bytes_read: float = 0.0
    bytes_rewritten: int = 0
    compacts: int = 0
    # -- plan mix and regret -------------------------------------------
    plan_edit: int = 0
    plan_overwrite: int = 0
    plan_forced: int = 0
    lookups: int = 0
    lookup_eligible_scans: int = 0
    lookup_fallbacks: int = 0
    overwrite_regret: int = 0
    edit_regret: int = 0
    regret_seconds: float = 0.0
    # -- cost-model audit ----------------------------------------------
    audits: int = 0
    rel_error_mean: float = 0.0
    rel_error_max: float = 0.0
    # -- EWMA (shared with the maintenance daemon) ---------------------
    reads_per_dml: float = 1.0
    # -- sharding (dualtable-sharded only) -----------------------------
    shard_count: int = 0
    shard_heats: list = field(default_factory=list)
    # -- distributions (for the dashboard) -----------------------------
    scan_bytes_hist: dict = field(default_factory=dict)
    dml_seconds_hist: dict = field(default_factory=dict)

    @property
    def scan_dml_ratio(self):
        """Scans per mutation (DML-free tables read as pure-scan)."""
        return self.scans / max(1, self.dmls)

    def as_dict(self):
        return {
            "table": self.table,
            "storage": self.storage,
            "mode": self.mode,
            "read_factor": self.read_factor,
            "autocompact_on": self.autocompact_on,
            "scans": self.scans,
            "dmls": self.dmls,
            "updates": self.updates,
            "deletes": self.deletes,
            "deltas_applied": self.deltas_applied,
            "batches_fast": self.batches_fast,
            "batches_overlay": self.batches_overlay,
            "batches_row_fallback": self.batches_row_fallback,
            "attached_bytes": self.attached_bytes,
            "bytes_read": round(self.bytes_read, 6),
            "bytes_rewritten": self.bytes_rewritten,
            "compacts": self.compacts,
            "plan_edit": self.plan_edit,
            "plan_overwrite": self.plan_overwrite,
            "plan_forced": self.plan_forced,
            "lookups": self.lookups,
            "lookup_eligible_scans": self.lookup_eligible_scans,
            "lookup_fallbacks": self.lookup_fallbacks,
            "overwrite_regret": self.overwrite_regret,
            "edit_regret": self.edit_regret,
            "regret_seconds": round(self.regret_seconds, 6),
            "audits": self.audits,
            "rel_error_mean": round(self.rel_error_mean, 6),
            "rel_error_max": round(self.rel_error_max, 6),
            "reads_per_dml": round(self.reads_per_dml, 6),
            "scan_dml_ratio": round(self.scan_dml_ratio, 6),
            "shard_count": self.shard_count,
            "shard_heats": list(self.shard_heats),
            "scan_bytes_hist": self.scan_bytes_hist,
            "dml_seconds_hist": self.dml_seconds_hist,
        }


def build_profile(session, name):
    """The :class:`TableProfile` of one DualTable (by catalog name)."""
    info = session.metastore.table(name)
    handler = info.handler
    metrics = session.cluster.metrics
    counters = metrics.counters
    gauges = metrics.gauges

    def c(pattern):
        return counters.get(pattern % name, 0)

    def h(pattern):
        return metrics.histogram(pattern % name)

    stats = session.maintenance.collector.refresh(name,
                                                  handler.read_factor)
    scan_bytes = h("dualtable.scan_bytes.%s")
    regret = h("dualtable.plan.regret_seconds.%s")
    rel_error = h("costmodel.rel_error.table.%s")
    return TableProfile(
        table=name,
        storage=info.storage,
        mode=handler.mode,
        read_factor=handler.read_factor,
        autocompact_on=name in session.maintenance.configs,
        scans=c("dualtable.scans.%s"),
        dmls=c("dualtable.dml.%s"),
        updates=c("dualtable.updates.%s"),
        deletes=c("dualtable.deletes.%s"),
        deltas_applied=c("unionread.deltas_applied.%s"),
        batches_fast=c("unionread.batches_fast.%s"),
        batches_overlay=c("unionread.batches_overlay.%s"),
        batches_row_fallback=c("unionread.batches_row_fallback.%s"),
        attached_bytes=int(gauges.get("dualtable.attached_bytes.%s"
                                      % name, 0)),
        bytes_read=scan_bytes.total if scan_bytes else 0.0,
        bytes_rewritten=c("dualtable.bytes_rewritten.%s"),
        compacts=c("dualtable.compacts.%s"),
        plan_edit=c("dualtable.plan.edit.%s"),
        plan_overwrite=c("dualtable.plan.overwrite.%s"),
        plan_forced=c("dualtable.plan.forced.%s"),
        lookups=c("dualtable.plan.lookup.%s"),
        lookup_eligible_scans=c("dualtable.plan.lookup_eligible_scan.%s"),
        lookup_fallbacks=c("dualtable.plan.lookup_fallback.%s"),
        overwrite_regret=c("dualtable.plan.overwrite_regret.%s"),
        edit_regret=c("dualtable.plan.edit_regret.%s"),
        regret_seconds=regret.total if regret else 0.0,
        audits=c("costmodel.audits.%s"),
        rel_error_mean=rel_error.mean if rel_error else 0.0,
        rel_error_max=(rel_error.vmax or 0.0) if rel_error else 0.0,
        reads_per_dml=stats.reads_per_dml,
        shard_count=getattr(handler, "num_shards", 0),
        shard_heats=(list(handler.shard_heats())
                     if hasattr(handler, "shard_heats") else []),
        scan_bytes_hist=_hist_summary(scan_bytes),
        dml_seconds_hist=_hist_summary(h("dualtable.dml_seconds.%s")),
    )


def build_profiles(session):
    """Profiles of every DualTable in the catalog, sorted by name."""
    return [build_profile(session, name)
            for name in sorted(session.metastore.list_tables())
            if session.metastore.table(name).storage
            in ("dualtable", "dualtable-sharded")]
