"""repro.advisor: the workload advisor closing the obs loop.

The PR-2 obs stack records; this package *interprets*: per-table
workload profiles (:mod:`repro.advisor.profiles`) feed a rule-based
analyzer (:mod:`repro.advisor.analyzer`) that emits typed findings
with evidence and executable remediations, surfaced through
``SHOW ADVISOR`` / ``ANALYZE WORKLOAD [APPLY]`` and the telemetry
dashboard (:mod:`repro.obs.dashboard`).
"""

from repro.advisor.analyzer import WorkloadAdvisor, apply_findings
from repro.advisor.findings import FINDING_COLUMNS, SEVERITIES, Finding
from repro.advisor.profiles import (TableProfile, build_profile,
                                    build_profiles)

__all__ = ["Finding", "FINDING_COLUMNS", "SEVERITIES", "TableProfile",
           "WorkloadAdvisor", "advisor_rows", "analyze_workload",
           "apply_findings", "build_profile", "build_profiles"]


def advisor_rows(session):
    """``SHOW ADVISOR`` rows: current findings, no side effects."""
    return [finding.row()
            for finding in WorkloadAdvisor(session).analyze()]


def analyze_workload(session, apply=False):
    """Run the advisor; with ``apply``, execute the remediations too.

    Returns a QueryResult whose rows are the findings and whose detail
    carries the full finding dicts plus the applied statement list; the
    remediations' simulated time is charged to this statement.
    """
    # Imported lazily: repro.hive.session itself dispatches to us.
    from repro.hive.session import QueryResult

    metrics = session.cluster.metrics
    findings = WorkloadAdvisor(session).analyze()
    metrics.incr("advisor.runs")
    metrics.incr("advisor.findings", len(findings))
    applied = []
    sim_seconds = 0.0
    if apply:
        for sql, result in apply_findings(session, findings):
            applied.append(sql)
            sim_seconds += result.sim_seconds
        metrics.incr("advisor.applied", len(applied))
    return QueryResult(
        names=list(FINDING_COLUMNS),
        rows=[finding.row() for finding in findings],
        sim_seconds=sim_seconds,
        plan="analyze-workload-apply" if apply else "analyze-workload",
        affected=len(applied) if apply else None,
        detail={"findings": [finding.as_dict() for finding in findings],
                "applied": applied})
