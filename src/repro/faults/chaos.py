"""Chaos harness: DML scripts under seeded fault schedules + an oracle.

One *chaos schedule* is a fully deterministic experiment derived from a
single integer seed:

1. build a small DualTable (3-worker laptop profile, several master
   files) and a plain ``{k: v}`` dict — the replay oracle;
2. install a :meth:`FaultPlan.random` schedule on the cluster's
   injector (task crashes, region-server crashes, datanode losses,
   mid-COMPACT and mid-commit kills, stragglers);
3. run a random script of UPDATE / DELETE / COMPACT statements.  A
   statement that *returns* is committed and is applied to the oracle.
   A statement that *raises* triggers :meth:`DualTableHandler.recover`
   (with injection paused — recovery runs after the fault storm): if
   its redo log was durable the statement rolled forward and is applied
   to the oracle, otherwise it rolled back and is not;
4. after every statement — and once more at the end — assert that
   ``SELECT k, v`` (the UNION READ path) equals the oracle exactly, and
   that a second ``recover()`` leaves the table byte-identical
   (idempotence).

Any failure reproduces from its seed alone.
"""

from repro.common.errors import ReproError
from repro.common.rng import make_rng
from repro.faults.injector import Fault, FaultPlan


def build_chaos_session(num_rows=48, rows_per_file=12):
    """A small DualTable session shaped for fault testing.

    Three workers (so datanode losses leave live replicas) and several
    master files (so jobs have multiple tasks to crash).  Returns
    ``(session, oracle)``.
    """
    from repro.cluster import ClusterProfile
    from repro.hive import HiveSession

    profile = ClusterProfile.laptop(num_workers=3)
    session = HiveSession(profile=profile)
    session.execute(
        "CREATE TABLE t (k int, v int) STORED AS DUALTABLE "
        "TBLPROPERTIES ('orc.rows_per_file' = '%d', "
        "'orc.stripe_rows' = '6')" % rows_per_file)
    rows = [(i, i * 10) for i in range(num_rows)]
    session.load_rows("t", rows)
    return session, dict(rows)


def make_ops(rng, num_rows, n_statements):
    """A random statement script with matching oracle-apply closures.

    Returns ``[(kind, sql, apply_fn_or_None)]``.
    """
    ops = []
    for _ in range(n_statements):
        roll = rng.random()
        if roll < 0.45:
            lo = rng.randrange(num_rows)
            hi = min(num_rows, lo + rng.randint(1, max(2, num_rows // 3)))
            delta = rng.randint(1, 99)
            sql = ("UPDATE t SET v = v + %d WHERE k >= %d AND k < %d"
                   % (delta, lo, hi))

            def apply_fn(oracle, lo=lo, hi=hi, delta=delta):
                for k in oracle:
                    if lo <= k < hi:
                        oracle[k] += delta

            ops.append(("update", sql, apply_fn))
        elif roll < 0.70:
            lo = rng.randrange(num_rows)
            hi = min(num_rows, lo + rng.randint(1, max(2, num_rows // 6)))
            sql = "DELETE FROM t WHERE k >= %d AND k < %d" % (lo, hi)

            def apply_fn(oracle, lo=lo, hi=hi):
                for k in [k for k in oracle if lo <= k < hi]:
                    del oracle[k]

            ops.append(("delete", sql, apply_fn))
        else:
            # Half the compactions are incremental, so the partial 2PC
            # fault points get hit under random schedules too.
            sql = ("COMPACT TABLE t PARTIAL" if rng.random() < 0.5
                   else "COMPACT TABLE t")
            ops.append(("compact", sql, None))
    return ops


def verify_against_oracle(session, oracle):
    """UNION READ == dict replay, with injection paused."""
    with session.cluster.faults.paused():
        rows = session.execute("SELECT k, v FROM t ORDER BY k").rows
    expected = sorted(oracle.items())
    assert rows == expected, (
        "UNION READ diverged from oracle: %r != %r" % (rows, expected))


def table_state(session):
    """A comparable snapshot of the full logical + physical table state."""
    handler = session.table("t").handler
    with session.cluster.faults.paused():
        files = tuple(handler.master.file_paths())
        rows = tuple(session.execute("SELECT k, v FROM t ORDER BY k").rows)
        attached = tuple(
            (rid, delta.deleted, tuple(sorted(delta.updates.items())))
            for rid, delta in handler.attached.scan_range())
    return files, rows, attached


#: injection points armed for *concurrent* chaos.  Deliberately a
#: separate tuple (not an extension of POINT_KINDS): the serial
#: schedules above draw points via ``rng.choice`` over POINT_KINDS, so
#: growing that dict would silently reshuffle every existing seed.
SERVER_CHAOS_POINTS = (
    "mapreduce.map",
    "hbase.put",
    "hdfs.write_block",
    "dualtable.dml.stage",
    "dualtable.dml.publish",
)


def run_server_chaos_schedule(seed, statements=40, clients=8, accounts=12,
                              concurrency=4):
    """One seeded *concurrent* chaos experiment; returns a summary dict.

    Derives from the seed: an open-loop ledger schedule over ``clients``
    sessions, 1–3 session kills landing mid-flight, and a random fault
    plan over :data:`SERVER_CHAOS_POINTS` (task crashes, region-server
    crashes, datanode losses, mid-stage and mid-publish kills).  Then
    asserts the server's robustness bar:

    * **zero lost writes** — every statement the server reported
      committed is present in the final ``SUM(v)``;
    * **zero phantom writes** — no aborted/killed statement leaked
      edits;
    * **no orphaned transaction state** — the redo-log directory and
      COMPACT 2PC paths are empty once the run settles;
    * **recover() is idempotent** — running recovery twice more changes
      nothing.

    Any failure reproduces from the seed alone.
    """
    # Imported lazily: repro.server imports the Hive stack, and this
    # module is also used by lightweight fault-injection tests.
    from repro.server.driver import (build_ledger_server, ledger_arrivals,
                                     ledger_totals, run_open_loop)

    rng = make_rng("server-chaos", seed)
    server = build_ledger_server(accounts=accounts, seed=seed,
                                 concurrency=concurrency)
    arrivals = ledger_arrivals(server, clients=clients,
                               statements=statements, accounts=accounts,
                               seed=seed)
    kills = []
    for _ in range(rng.randint(1, 3)):
        anchor = arrivals[rng.randrange(len(arrivals))]
        kills.append((anchor.time + rng.random() * 0.5,
                      anchor.session.id))
    plan = FaultPlan.random(rng, max_faults=3, max_hit=8,
                            points=SERVER_CHAOS_POINTS)
    faults = server.cluster.faults
    faults.install(plan)
    try:
        summary = run_open_loop(server, arrivals, kills=kills)
    finally:
        fired = [(f.point, f.kind) for f, _ in faults.fired]
        faults.uninstall()
    summary["seed"] = seed
    summary["kills"] = len(kills)
    summary["fired"] = fired
    assert summary["lost_writes"] == 0, (
        "seed %r lost %d committed write units"
        % (seed, summary["lost_writes"]))
    assert summary["phantom_writes"] == 0, (
        "seed %r leaked %d uncommitted write units"
        % (seed, summary["phantom_writes"]))
    handler = server.engine.table("ledger").handler
    fs = server.engine.fs
    staged = (list(fs.list_files(handler.txn_dir))
              if fs.exists(handler.txn_dir) else [])
    assert not staged, "seed %r left orphaned redo logs: %r" % (seed, staged)
    for path in (handler._manifest_path, handler._compact_tmp,
                 handler._compact_old):
        assert not fs.exists(path), (
            "seed %r left orphaned COMPACT state at %s" % (seed, path))
    total_once, _ = ledger_totals(server.engine)
    handler.recover()
    total_twice, _ = ledger_totals(server.engine)
    handler.recover()
    total_thrice, _ = ledger_totals(server.engine)
    assert total_once == total_twice == total_thrice, (
        "recover() is not idempotent for seed %r" % seed)
    return summary


def build_lookup_chaos_session(num_rows=48, rows_per_file=12):
    """A PRIMARY KEY DualTable session shaped for LOOKUP fault testing."""
    from repro.cluster import ClusterProfile
    from repro.hive import HiveSession

    profile = ClusterProfile.laptop(num_workers=3)
    session = HiveSession(profile=profile)
    session.execute(
        "CREATE TABLE t (k int, v int, PRIMARY KEY (k)) "
        "STORED AS DUALTABLE "
        "TBLPROPERTIES ('orc.rows_per_file' = '%d', "
        "'orc.stripe_rows' = '6')" % rows_per_file)
    rows = [(i, i * 10) for i in range(num_rows)]
    session.load_rows("t", rows)
    return session, dict(rows)


def run_lookup_chaos_schedule(seed, n_statements=10, num_rows=48):
    """One seeded LOOKUP chaos experiment; returns a summary dict.

    Interleaves forced-LOOKUP point reads (``SET dualtable.plan =
    lookup``) with UPDATE / DELETE / COMPACT statements under a random
    fault plan over the LOOKUP injection points (``lookup.index_read``
    crashes, ``lookup.hbase_probe`` crashes and region-server crashes).
    The robustness bar:

    * every statement succeeds — a mid-lookup fault falls back to the
      MR scan plan instead of failing the SELECT (both LOOKUP points
      fire before the first charged byte, so nothing is double-charged;
      the ledger-equality proof lives in tests/test_lookup.py);
    * every point read returns exactly the oracle's rows, faults or not;
    * the fallback counter equals the number of fired LOOKUP faults;
    * the full-scan oracle check passes after every statement.

    Any failure reproduces from its seed alone.
    """
    from repro.core.lookup import LOOKUP_CHAOS_POINTS

    rng = make_rng("lookup-chaos", seed)
    session, oracle = build_lookup_chaos_session(num_rows=num_rows)
    faults = session.cluster.faults
    schedule = []
    for _ in range(rng.randint(1, 3)):
        point = rng.choice(sorted(LOOKUP_CHAOS_POINTS))
        kind = rng.choice(LOOKUP_CHAOS_POINTS[point])
        schedule.append(Fault(point=point, nth_hit=rng.randint(1, 4),
                              kind=kind))
    faults.install(FaultPlan(schedule))
    summary = {"seed": seed, "statements": n_statements, "lookups": 0,
               "fallbacks": 0, "fired": []}
    try:
        for _ in range(n_statements):
            roll = rng.random()
            if roll < 0.5:
                k = rng.randrange(num_rows)
                fired_before = len(faults.fired)
                session.execute("SET dualtable.plan = lookup")
                try:
                    result = session.execute(
                        "SELECT k, v FROM t WHERE k = %d" % k)
                finally:
                    session.execute("SET dualtable.plan = cost")
                expected = [(k, oracle[k])] if k in oracle else []
                assert result.rows == expected, (
                    "seed %r: lookup k=%d returned %r, oracle %r"
                    % (seed, k, result.rows, expected))
                if len(faults.fired) > fired_before:
                    # A fault fired mid-lookup: the statement must have
                    # fallen back to the MR scan plan, not failed.
                    assert result.plan.startswith("select("), (
                        "seed %r: faulted lookup reported plan %r"
                        % (seed, result.plan))
                summary["lookups"] += 1
            elif roll < 0.75:
                lo = rng.randrange(num_rows)
                hi = min(num_rows,
                         lo + rng.randint(1, max(2, num_rows // 4)))
                delta = rng.randint(1, 99)
                session.execute(
                    "UPDATE t SET v = v + %d WHERE k >= %d AND k < %d"
                    % (delta, lo, hi))
                for key in oracle:
                    if lo <= key < hi:
                        oracle[key] += delta
            elif roll < 0.9:
                k = rng.randrange(num_rows)
                session.execute("DELETE FROM t WHERE k = %d" % k)
                oracle.pop(k, None)
            else:
                session.execute("COMPACT TABLE t PARTIAL"
                                if rng.random() < 0.5
                                else "COMPACT TABLE t")
            verify_against_oracle(session, oracle)
    finally:
        summary["fired"] = [(f.point, f.kind) for f, _ in faults.fired]
        faults.uninstall()
    fired_lookup = [pair for pair in summary["fired"]
                    if pair[0] in LOOKUP_CHAOS_POINTS]
    fallbacks = session.cluster.metrics.counters.get(
        "dualtable.plan.lookup_fallback.t", 0)
    assert fallbacks == len(fired_lookup), (
        "seed %r: %d LOOKUP faults fired but %d fallbacks recorded"
        % (seed, len(fired_lookup), fallbacks))
    summary["fallbacks"] = fallbacks
    verify_against_oracle(session, oracle)
    return summary


#: injection points armed for *sharded* chaos.  A separate dict (same
#: rationale as SERVER_CHAOS_POINTS): ``region_crash`` on the LOOKUP
#: probe and the EditBatch puts simulates a region server dying
#: mid-query / mid-commit (replica failover = WAL replay on the next
#: access), while the ``kill`` kinds land inside the rebalance 2PC so
#: both roll-forward and roll-back recovery run under random schedules.
SHARD_CHAOS_POINTS = {
    "lookup.hbase_probe": ("region_crash",),
    "hbase.put": ("region_crash",),
    "dualtable.rebalance.spill": ("kill", "crash"),
    "dualtable.rebalance.manifest": ("kill", "crash"),
    "dualtable.rebalance.apply": ("kill", "crash"),
    "dualtable.rebalance.cleanup": ("kill",),
}


def build_shard_chaos_session(num_rows=48, rows_per_file=12, shards=4):
    """A sharded PRIMARY KEY DualTable session shaped for fault testing."""
    from repro.cluster import ClusterProfile
    from repro.hive import HiveSession

    profile = ClusterProfile.laptop(num_workers=3)
    session = HiveSession(profile=profile)
    session.execute(
        "CREATE TABLE t (k int, v int, PRIMARY KEY (k)) "
        "STORED AS DUALTABLE SHARDED BY (k) INTO %d "
        "TBLPROPERTIES ('orc.rows_per_file' = '%d', "
        "'orc.stripe_rows' = '6')" % (shards, rows_per_file))
    rows = [(i, i * 10) for i in range(num_rows)]
    session.load_rows("t", rows)
    return session, dict(rows)


def shard_table_state(session):
    """A comparable snapshot of a sharded table's logical + physical state."""
    handler = session.table("t").handler
    with session.cluster.faults.paused():
        rows = tuple(session.execute("SELECT k, v FROM t ORDER BY k").rows)
        files = tuple(handler.master.file_paths())
        assignment = tuple(handler.shard_map.assignment)
        attached = tuple(
            (child.table.name, rid, delta.deleted,
             tuple(sorted(delta.updates.items())))
            for child in handler.children
            for rid, delta in child.attached.scan_range())
    return files, rows, assignment, attached


def run_shard_chaos_schedule(seed, n_statements=12, num_rows=48, shards=4):
    """One seeded shard-kill chaos experiment; returns a summary dict.

    Interleaves routed point reads, range DML and ``ALTER TABLE ...
    REBALANCE`` under a random fault plan over
    :data:`SHARD_CHAOS_POINTS`.  The robustness bar:

    * a region server killed mid-LOOKUP falls back to the scatter-gather
      scan — the statement still returns exactly the oracle's rows, and
      the next attached access replays the WAL (replica failover);
    * a region server killed mid-commit is absorbed by the EditBatch
      retry loop — the statement commits and the oracle applies;
    * a ``kill`` inside the rebalance 2PC either rolls forward (manifest
      durable) or rolls back (spill only) on ``recover()`` — and since a
      rebalance only *moves* buckets, the oracle is unchanged either
      way, so oracle equality after recovery proves no row was lost or
      duplicated mid-move;
    * the full-scan oracle check passes after every statement and
      ``recover()`` is idempotent at the end.

    Any failure reproduces from its seed alone.
    """
    rng = make_rng("shard-chaos", seed)
    session, oracle = build_shard_chaos_session(num_rows=num_rows,
                                                shards=shards)
    handler = session.table("t").handler
    faults = session.cluster.faults
    schedule = []
    for _ in range(rng.randint(1, 3)):
        point = rng.choice(sorted(SHARD_CHAOS_POINTS))
        kind = rng.choice(SHARD_CHAOS_POINTS[point])
        schedule.append(Fault(point=point, nth_hit=rng.randint(1, 4),
                              kind=kind))
    faults.install(FaultPlan(schedule))
    summary = {"seed": seed, "statements": n_statements, "lookups": 0,
               "rebalances": 0, "failed": 0, "rolled_forward": 0,
               "fired": []}

    def recover_after_failure():
        with faults.paused():
            outcome = handler.recover()
        if any(o == "rolled_forward" for _, o in outcome["dml"]):
            summary["rolled_forward"] += 1
            return True
        return False

    try:
        for _ in range(n_statements):
            roll = rng.random()
            if roll < 0.4:
                k = rng.randrange(num_rows)
                session.execute("SET dualtable.plan = lookup")
                try:
                    result = session.execute(
                        "SELECT k, v FROM t WHERE k = %d" % k)
                finally:
                    session.execute("SET dualtable.plan = cost")
                expected = [(k, oracle[k])] if k in oracle else []
                assert result.rows == expected, (
                    "seed %r: lookup k=%d returned %r, oracle %r"
                    % (seed, k, result.rows, expected))
                summary["lookups"] += 1
            elif roll < 0.65:
                lo = rng.randrange(num_rows)
                hi = min(num_rows,
                         lo + rng.randint(1, max(2, num_rows // 4)))
                delta = rng.randint(1, 99)
                sql = ("UPDATE t SET v = v + %d WHERE k >= %d AND k < %d"
                       % (delta, lo, hi))
                committed = True
                try:
                    session.execute(sql)
                except ReproError:
                    summary["failed"] += 1
                    committed = recover_after_failure()
                if committed:
                    for key in oracle:
                        if lo <= key < hi:
                            oracle[key] += delta
            elif roll < 0.8:
                k = rng.randrange(num_rows)
                committed = True
                try:
                    session.execute("DELETE FROM t WHERE k = %d" % k)
                except ReproError:
                    summary["failed"] += 1
                    committed = recover_after_failure()
                if committed:
                    oracle.pop(k, None)
            else:
                # A rebalance moves one bucket between shards; the
                # logical contents are invariant whether it commits,
                # rolls forward or rolls back.
                try:
                    session.execute("ALTER TABLE t REBALANCE")
                    summary["rebalances"] += 1
                except ReproError:
                    summary["failed"] += 1
                    recover_after_failure()
            verify_against_oracle(session, oracle)
    finally:
        summary["fired"] = [(f.point, f.kind) for f, _ in faults.fired]
        faults.uninstall()
    verify_against_oracle(session, oracle)
    before = shard_table_state(session)
    handler.recover()
    once = shard_table_state(session)
    handler.recover()
    twice = shard_table_state(session)
    assert before == once == twice, (
        "recover() is not idempotent for seed %r" % seed)
    return summary


def run_chaos_schedule(seed, n_statements=6, num_rows=48):
    """Run one seeded schedule end-to-end; returns a summary dict.

    Raises AssertionError (with the seed in hand) on any invariant
    violation.
    """
    rng = make_rng("chaos", seed)
    session, oracle = build_chaos_session(num_rows=num_rows)
    handler = session.table("t").handler
    faults = session.cluster.faults
    plan = FaultPlan.random(rng, max_faults=3, max_hit=10)
    ops = make_ops(rng, num_rows, n_statements)
    faults.install(plan)
    summary = {"seed": seed, "plan": plan, "statements": len(ops),
               "failed": 0, "rolled_forward": 0, "fired": 0}
    try:
        for kind, sql, apply_fn in ops:
            committed = False
            try:
                session.execute(sql)
                committed = True
            except ReproError:
                summary["failed"] += 1
                # Recovery runs after the failure, injection paused.
                with faults.paused():
                    outcome = handler.recover()
                if any(o == "rolled_forward" for _, o in outcome["dml"]):
                    committed = True
                    summary["rolled_forward"] += 1
                # Either way the table must be consistent: roll-forward
                # compactions / rolled-back DML both leave it readable.
            if committed and apply_fn is not None:
                apply_fn(oracle)
            verify_against_oracle(session, oracle)
    finally:
        summary["fired"] = [(f.point, f.kind) for f, _ in faults.fired]
        faults.uninstall()
    # Final invariants: oracle equivalence and recover() idempotence.
    verify_against_oracle(session, oracle)
    before = table_state(session)
    handler.recover()
    once = table_state(session)
    handler.recover()
    twice = table_state(session)
    assert before == once == twice, (
        "recover() is not idempotent for seed %r" % seed)
    return summary
