"""Seeded deterministic fault injection and the chaos harness.

``repro.faults`` gives every substrate layer named injection points
(``cluster.faults.hit("hbase.put")``) and gives tests a reproducible way
to schedule crashes against them: a :class:`FaultPlan` is a list of
``(injection_point, nth_hit, fault_kind)`` triples, derived from
:mod:`repro.common.rng` seeds so any chaos failure replays exactly.

See :mod:`repro.faults.injector` for the kind semantics and
:mod:`repro.faults.chaos` for the oracle-checked chaos schedules.
"""

from repro.faults.injector import (ACTION_KINDS, FATAL_KINDS,
                                   INJECTION_POINTS, POINT_KINDS,
                                   RAISING_KINDS, Fault, FaultInjector,
                                   FaultPlan)

__all__ = [
    "ACTION_KINDS",
    "FATAL_KINDS",
    "INJECTION_POINTS",
    "POINT_KINDS",
    "RAISING_KINDS",
    "Fault",
    "FaultInjector",
    "FaultPlan",
]
