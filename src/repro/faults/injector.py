"""Deterministic fault injection: named points, seeded plans, one firing.

Every substrate layer calls ``cluster.faults.hit("<point>", **context)``
at its named injection points.  With no plan installed this is a cheap
no-op, so the production path pays one attribute check.  With a plan
installed the injector counts hits per point and *fires* a fault exactly
when a ``(point, nth_hit)`` pair in the plan is reached:

* raising kinds (``crash``, ``kill``, ``region_crash``) raise
  :class:`~repro.common.errors.FaultInjectedError` — ``kill`` is marked
  fatal (simulates the client JVM dying: retry layers must not absorb
  it), the others are retryable task/RPC failures;
* ``region_crash`` additionally runs its bound action first (the session
  binds it to :meth:`HBaseService.crash_region_server`, wiping every
  memstore) so the error comes with real lost state behind it;
* ``datanode_loss`` runs its action (kill one live datanode) and returns
  without raising — HDFS clients notice via replica failover;
* ``slow`` never raises: the MapReduce runner stretches the straggler
  task's duration by ``fault.factor`` instead.

A fault fires at most once (hit counters only move forward), which keeps
retry loops convergent by construction.
"""

from contextlib import contextmanager

from repro.common.errors import FaultInjectedError

#: fault kinds that raise FaultInjectedError at the injection point.
RAISING_KINDS = frozenset({"crash", "kill", "region_crash"})
#: raising kinds that must not be absorbed by retry layers.
FATAL_KINDS = frozenset({"kill"})
#: kinds that only run a bound side-effect action.
ACTION_KINDS = frozenset({"region_crash", "datanode_loss"})

#: every named injection point threaded through the stack, with the
#: fault kinds that make physical sense there (used by random plans).
POINT_KINDS = {
    "mapreduce.map": ("crash", "slow", "crash"),
    "mapreduce.reduce": ("crash", "slow"),
    "hbase.put": ("crash", "region_crash"),
    "hbase.delete": ("crash", "region_crash"),
    "hdfs.write_block": ("datanode_loss",),
    "dualtable.dml.stage": ("kill", "crash"),
    "dualtable.dml.publish": ("kill", "crash", "region_crash"),
    "dualtable.compact.write": ("kill",),
    "dualtable.compact.manifest": ("kill",),
    "dualtable.compact.swap": ("kill",),
    "dualtable.compact.swap2": ("kill",),
    "dualtable.compact.truncate": ("kill",),
    "dualtable.compact.cleanup": ("kill",),
    "dualtable.compact.partial.write": ("kill",),
    "dualtable.compact.partial.manifest": ("kill",),
    "dualtable.compact.partial.swap": ("kill",),
    "dualtable.compact.partial.delta_drop": ("kill",),
    "dualtable.autocompact.tick": ("kill",),
}

INJECTION_POINTS = tuple(sorted(POINT_KINDS))


class Fault:
    """One scheduled fault: fire ``kind`` at the ``nth_hit`` of ``point``."""

    __slots__ = ("point", "nth_hit", "kind", "factor")

    def __init__(self, point, nth_hit=1, kind="crash", factor=8.0):
        self.point = point
        self.nth_hit = int(nth_hit)
        self.kind = kind
        self.factor = float(factor)

    def __repr__(self):
        return "Fault(%r, nth_hit=%d, kind=%r)" % (
            self.point, self.nth_hit, self.kind)

    def __eq__(self, other):
        return (isinstance(other, Fault)
                and (self.point, self.nth_hit, self.kind, self.factor)
                == (other.point, other.nth_hit, other.kind, other.factor))


class FaultPlan:
    """An ordered collection of :class:`Fault` triples."""

    def __init__(self, faults=()):
        self.faults = list(faults)

    def __iter__(self):
        return iter(self.faults)

    def __len__(self):
        return len(self.faults)

    def __repr__(self):
        return "FaultPlan(%r)" % (self.faults,)

    @classmethod
    def random(cls, rng, max_faults=3, max_hit=10, points=None):
        """A seeded random schedule over the known injection points.

        ``rng`` must be a ``random.Random`` (use
        :func:`repro.common.rng.make_rng` so schedules reproduce from a
        single seed).  Statement-level ``dualtable.*`` points are hit
        only a handful of times per workload, so their ``nth_hit`` is
        drawn from a small range — otherwise they would almost never
        fire.
        """
        points = sorted(points or POINT_KINDS)
        faults = []
        for _ in range(rng.randint(1, max_faults)):
            point = rng.choice(points)
            kind = rng.choice(POINT_KINDS.get(point, ("crash",)))
            cap = 3 if point.startswith("dualtable.") else max_hit
            faults.append(Fault(point=point,
                                nth_hit=rng.randint(1, cap),
                                kind=kind,
                                factor=rng.choice((4.0, 8.0, 16.0))))
        return cls(faults)


class FaultInjector:
    """Per-cluster fault-injection state machine.

    One injector lives on every :class:`repro.cluster.Cluster`; layers
    reach it as ``cluster.faults``.  Actions for side-effecting kinds are
    bound by whoever owns the affected subsystem (the HiveSession binds
    ``region_crash`` and ``datanode_loss``).
    """

    def __init__(self):
        self._plan = None
        self._hits = {}
        self._actions = {}
        self._paused = 0
        #: (fault, context) pairs that actually fired, in order.
        self.fired = []
        #: optional observer called as ``on_fire(fault, context)`` before
        #: the fault's action/raise (the cluster binds metrics here).
        self.on_fire = None

    # ------------------------------------------------------------------
    # Plan management.
    # ------------------------------------------------------------------
    def install(self, plan):
        """Install a plan and reset hit counters and the fired log."""
        self._plan = plan
        self._hits = {}
        self.fired = []

    def uninstall(self):
        self._plan = None

    @property
    def active(self):
        return self._plan is not None and not self._paused

    @property
    def armed(self):
        """A plan is installed (paused or not).

        Hit counters advance in global serial order, so the parallel
        engine stays off whenever a plan exists — even paused, since a
        resume mid-workload must observe the same counts as serial.
        """
        return self._plan is not None

    def bind(self, kind, action):
        """Register the side-effect callable for an action kind."""
        self._actions[kind] = action

    def hit_count(self, point):
        return self._hits.get(point, 0)

    # ------------------------------------------------------------------
    # Pause (used while verifying invariants mid-chaos).
    # ------------------------------------------------------------------
    def pause(self):
        self._paused += 1

    def resume(self):
        self._paused = max(0, self._paused - 1)

    @contextmanager
    def paused(self):
        self.pause()
        try:
            yield
        finally:
            self.resume()

    # ------------------------------------------------------------------
    # The injection point.
    # ------------------------------------------------------------------
    def hit(self, point, **context):
        """Record one hit of ``point``; fire any scheduled fault.

        Returns the fired :class:`Fault` for non-raising kinds (callers
        that model e.g. slowdowns inspect it) or None.
        """
        if self._plan is None or self._paused:
            return None
        count = self._hits.get(point, 0) + 1
        self._hits[point] = count
        for fault in self._plan:
            if fault.point == point and fault.nth_hit == count:
                return self._fire(fault, context)
        return None

    def _fire(self, fault, context):
        self.fired.append((fault, dict(context)))
        if self.on_fire is not None:
            self.on_fire(fault, context)
        action = self._actions.get(fault.kind)
        if action is not None:
            action(fault)
        if fault.kind in RAISING_KINDS:
            raise FaultInjectedError(fault.point, fault.kind, fault.nth_hit,
                                     fatal=fault.kind in FATAL_KINDS)
        return fault
