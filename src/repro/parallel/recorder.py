"""Per-task capture of ledger charges and metric events.

The capture/replay protocol is what makes parallel execution
deterministic: a worker thread never touches the global ledger or the
metrics registry directly.  Instead, :meth:`repro.cluster.Cluster.capture`
pushes a :class:`TaskRecorder` onto a *thread-local* stack; every charge
and metric event the thread produces while the recorder is active is
appended to it.  The coordinator then calls :meth:`TaskRecorder.replay`
for each task **in task order**, which issues exactly the sequence of
``ledger.record`` / ``metrics.incr`` calls the serial path would have
issued — same floats, same order, same scope attribution.

Recorders nest: replaying while an outer recorder is active (a cache
miss inside a pool worker, say) appends to the outer recorder instead of
the global ledger, so charges bubble out one level at a time and are
still applied globally in deterministic order.
"""


class TaskRecorder:
    """Captured side effects of one task attempt (or cache fill)."""

    __slots__ = ("charges", "events")

    def __init__(self):
        #: :class:`repro.cluster.ledger.Charge` objects, in charge order.
        self.charges = []
        #: ``("incr"|"observe"|"gauge", name, value)`` metric events.
        self.events = []

    def add_charge(self, charge):
        self.charges.append(charge)

    def add_event(self, kind, name, value):
        self.events.append((kind, name, value))

    def extend(self, other):
        """Adopt another recorder's captures (ordered concatenation)."""
        self.charges.extend(other.charges)
        self.events.extend(other.events)

    def replay(self, cluster):
        """Apply the captured charges and events to ``cluster``.

        Routed through :meth:`Cluster.record_charge` and
        :meth:`MetricsRegistry.replay`, both of which respect any capture
        active on the *calling* thread — so nested replays compose.
        """
        record = cluster.record_charge
        for charge in self.charges:
            record(charge)
        if self.events:
            cluster.metrics.replay(self.events)

    def __repr__(self):
        return ("TaskRecorder(charges=%d, events=%d)"
                % (len(self.charges), len(self.events)))
