"""Byte-budgeted, thread-safe LRU cache with hit/miss metrics.

Used for the ORC footer/stripe cache (``cluster.orc_cache``) and the
Attached-Table delta-range cache (``cluster.delta_cache``).  Entries
carry an explicit byte estimate; inserting past the budget evicts from
the LRU end, and a value larger than the whole budget is simply not
stored.

Cache *contents* never influence simulated time — hits replay the same
charges a miss records (callers enforce this; see
:mod:`repro.parallel`) — so the only observable difference a cache makes
is wall-clock speed plus the ``cache.<name>.*`` counters, which are
explicitly excluded from determinism comparisons (thread interleaving
can turn one miss into two concurrent misses).

Invalidation is by key prefix: keys are tuples whose first element is a
group tag (an HDFS path or an Attached-Table name), so a whole table's
entries drop in one call.  String tags match by ``startswith`` to cover
path prefixes (a master directory invalidates every file under it).
"""

import threading
from collections import OrderedDict


class ByteBudgetLRU:
    """An LRU mapping of tuple keys to (value, nbytes) with a byte cap."""

    def __init__(self, budget_bytes, metrics=None, name="cache"):
        self.budget_bytes = int(budget_bytes)
        self.metrics = metrics
        self.name = name
        self._lock = threading.Lock()
        self._entries = OrderedDict()    # key -> (value, nbytes)
        self._used = 0

    # ------------------------------------------------------------------
    def _incr(self, event):
        if self.metrics is not None:
            self.metrics.incr("%s.%s" % (self.name, event))

    def get(self, key):
        """The cached value, or None on a miss (counts either way)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            self._incr("misses")
            return None
        self._incr("hits")
        return entry[0]

    def put(self, key, value, nbytes):
        """Insert (or refresh) an entry, evicting LRU past the budget."""
        nbytes = max(0, int(nbytes))
        if self.budget_bytes <= 0 or nbytes > self.budget_bytes:
            return
        evicted = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._used -= old[1]
            self._entries[key] = (value, nbytes)
            self._used += nbytes
            while self._used > self.budget_bytes and self._entries:
                _, (_, freed) = self._entries.popitem(last=False)
                self._used -= freed
                evicted += 1
        if evicted and self.metrics is not None:
            self.metrics.incr("%s.evictions" % self.name, evicted)

    # ------------------------------------------------------------------
    # Invalidation (strict: callers hook every mutation of the backing
    # store — EDIT commit, COMPACT, INSERT OVERWRITE, WAL loss).
    # ------------------------------------------------------------------
    def invalidate_group(self, tag):
        """Drop every entry whose key's first element matches ``tag``.

        String tags match by prefix so a directory tag covers all file
        paths beneath it; non-string tags match by equality.
        """
        dropped = 0
        with self._lock:
            if isinstance(tag, str):
                doomed = [k for k in self._entries
                          if isinstance(k[0], str) and k[0].startswith(tag)]
            else:
                doomed = [k for k in self._entries if k[0] == tag]
            for key in doomed:
                _, freed = self._entries.pop(key)
                self._used -= freed
                dropped += 1
        if dropped and self.metrics is not None:
            self.metrics.incr("%s.invalidations" % self.name, dropped)
        return dropped

    def clear(self):
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._used = 0
        if dropped and self.metrics is not None:
            self.metrics.incr("%s.invalidations" % self.name, dropped)
        return dropped

    # ------------------------------------------------------------------
    @property
    def used_bytes(self):
        with self._lock:
            return self._used

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def __repr__(self):
        return ("ByteBudgetLRU(%s: %d entries, %d/%d bytes)"
                % (self.name, len(self), self.used_bytes,
                   self.budget_bytes))
