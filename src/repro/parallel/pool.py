"""Thread-backed worker pool with ordered results and inline fallback.

The pool never re-orders anything observable: ``map`` returns outcomes
in submission order and callers replay each task's captured charges in
that order (see :mod:`repro.parallel.recorder`).  Worker threads are
tagged so nested fan-out from inside a task runs inline instead of
deadlocking on pool slots.

Exceptions are *outcomes*, not crashes: a failed thunk yields a
:class:`TaskOutcome` carrying the error, and the caller decides whether
to fall back to the serial path (the MapReduce runner does, so the
retry/fault machinery stays byte-identical to serial execution).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

_WORKER_TLS = threading.local()


def in_worker():
    """True when the calling thread is a pool worker thread."""
    return getattr(_WORKER_TLS, "active", False)


class TaskOutcome:
    """Value-or-error result of one pooled thunk."""

    __slots__ = ("value", "error")

    def __init__(self, value=None, error=None):
        self.value = value
        self.error = error

    @classmethod
    def run(cls, thunk):
        try:
            return cls(value=thunk())
        except BaseException as exc:            # noqa: BLE001 — reported
            return cls(error=exc)

    def unwrap(self):
        if self.error is not None:
            raise self.error
        return self.value


def _run_in_worker(thunk):
    _WORKER_TLS.active = True
    try:
        return TaskOutcome.run(thunk)
    finally:
        _WORKER_TLS.active = False


class WorkerPool:
    """A fixed-width thread pool; ``workers=1`` degrades to inline."""

    def __init__(self, workers=1):
        self.workers = max(1, int(workers))
        self._executor = None
        self._lock = threading.Lock()

    @property
    def parallel(self):
        return self.workers > 1

    def _ensure_executor(self):
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-pool")
            return self._executor

    def map(self, thunks):
        """Run every thunk; return :class:`TaskOutcome`s in input order.

        Runs inline (same thread, same order) when the pool is serial,
        there is at most one thunk, or the caller is itself a pool
        worker — nested fan-out must not wait on the pool's own slots.
        """
        thunks = list(thunks)
        if not self.parallel or len(thunks) <= 1 or in_worker():
            return [TaskOutcome.run(thunk) for thunk in thunks]
        executor = self._ensure_executor()
        futures = [executor.submit(_run_in_worker, thunk)
                   for thunk in thunks]
        return [future.result() for future in futures]

    def close(self):
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self):
        return "WorkerPool(workers=%d)" % self.workers
