"""Parallel execution and caching: real wall-clock speed, simulated time.

This package gives the reproduction its first *real* multi-core
wall-clock wins while leaving every simulated quantity byte-identical:

* :class:`WorkerPool` — a thread-backed pool that runs map/reduce task
  attempts (and per-file UNION READ fan-out) concurrently.  Determinism
  is preserved by the capture/replay protocol: each task charges into a
  private :class:`TaskRecorder` instead of the global ledger, and the
  coordinator replays the recorders *in task order*, producing exactly
  the sequence of ``ledger.record`` calls the serial path produces.
* :class:`TaskRecorder` — the per-task capture buffer for ledger charges
  and metric events.
* :class:`ByteBudgetLRU` — a byte-budgeted LRU used for the ORC
  footer/stripe cache and the Attached-Table delta-range cache.  Cache
  hits skip the *real* CPU work (footer parse, stream decode, HBase
  scan) but replay the same simulated charges a miss records, so the
  cost model, figures and ``sim_seconds`` never depend on cache state.
* :func:`parallel_map` — ordered fan-out of a side-effect-free function
  over items through a cluster's pool, with capture/replay accounting.

See docs/INTERNALS.md §6 for the determinism argument and the cache
invalidation rules.
"""

from repro.parallel.cache import ByteBudgetLRU
from repro.parallel.pool import TaskOutcome, WorkerPool, in_worker
from repro.parallel.recorder import TaskRecorder

__all__ = [
    "ByteBudgetLRU",
    "TaskOutcome",
    "TaskRecorder",
    "WorkerPool",
    "in_worker",
    "parallel_map",
]


def parallel_map(cluster, fn, items):
    """Apply ``fn`` to every item, fanning out through ``cluster.pool``.

    Results come back in item order and all simulated charges/metrics
    are replayed in item order, so the outcome is byte-identical to
    ``[fn(item) for item in items]``.  ``fn`` must be side-effect free
    apart from cluster charges/metrics: if any call raises, nothing is
    replayed and the whole list is re-run inline (charges then flow
    directly, exactly as the serial path).

    Falls back to the inline loop when the pool is serial, the item list
    is trivial, the calling thread is already a pool worker, or faults /
    tracing are active (both are defined in terms of global serial
    order).
    """
    items = list(items)
    pool = cluster.pool
    if (len(items) <= 1 or not pool.parallel or in_worker()
            or cluster.faults.armed or cluster.tracer.enabled):
        return [fn(item) for item in items]

    def make_thunk(item):
        def thunk():
            with cluster.capture() as recorder:
                value = fn(item)
            return value, recorder
        return thunk

    outcomes = pool.map([make_thunk(item) for item in items])
    if any(outcome.error is not None for outcome in outcomes):
        # Nothing was replayed; the inline re-run charges normally and
        # raises the original error deterministically.
        return [fn(item) for item in items]
    results = []
    for outcome in outcomes:
        value, recorder = outcome.value
        recorder.replay(cluster)
        results.append(value)
    return results
