"""Structured span tracing over the simulated-time model.

A :class:`Tracer` lives on every cluster (``cluster.tracer``) and is
**disabled by default**: ``tracer.span(...)`` then returns a shared no-op
handle, so the production path pays one attribute check and never touches
the ledger — tracing off adds zero charges and changes no benchmark
numbers.

When enabled, each ``with tracer.span(kind, name, **attrs):`` block

* timestamps itself on the simulated-time axis (cumulative charged ledger
  seconds — the only monotone clock the simulation has; see
  docs/INTERNALS.md "Observability"), and
* attaches a :class:`~repro.cluster.ledger.CostScope` to the ledger for
  its lifetime, so on close the span carries exactly the bytes, ops,
  seconds and hbase_seconds charged inside it.

Span kinds form the trace hierarchy::

    statement  one SQL statement (hive/session.py)
      phase    a named sub-step (cost eval, edit commit, SELECT stages)
      job      one MapReduce job (mapreduce/runner.py)
        task   one task *attempt*, retries and speculation included
          substrate  HDFS file I/O, HBase WAL replay, union-read merges

Scopes are attached/detached by identity (not LIFO) so spans opened
inside generators (union-read) survive early abandonment.
"""

import itertools


class _NullSpan:
    """The shared disabled-tracer handle: absorbs every interaction."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def annotate(self, **attrs):
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One traced region; also its own context manager."""

    __slots__ = ("span_id", "parent_id", "kind", "name", "start_s", "end_s",
                 "attrs", "seconds", "hbase_seconds", "nbytes", "nops",
                 "_tracer", "_scope")

    def __init__(self, tracer, kind, name, attrs):
        self._tracer = tracer
        self.kind = kind
        self.name = name
        self.attrs = attrs
        self.span_id = None
        self.parent_id = None
        self.start_s = 0.0
        self.end_s = 0.0
        self.seconds = 0.0
        self.hbase_seconds = 0.0
        self.nbytes = 0
        self.nops = 0
        self._scope = None

    def annotate(self, **attrs):
        self.attrs.update(attrs)

    @property
    def duration_s(self):
        return self.end_s - self.start_s

    def __enter__(self):
        tracer = self._tracer
        self.span_id = next(tracer._ids)
        if tracer._stack:
            self.parent_id = tracer._stack[-1].span_id
        self.start_s = tracer.now()
        self._scope = tracer.cluster.ledger.attach_scope(
            label="span:%s" % self.name)
        tracer._stack.append(self)
        return self

    def __exit__(self, *exc):
        tracer = self._tracer
        scope, self._scope = self._scope, None
        if scope is not None:
            tracer.cluster.ledger.detach_scope(scope)
            self.seconds = scope.seconds
            self.hbase_seconds = scope.hbase_seconds
            self.nbytes = scope.nbytes
            self.nops = scope.nops
        # Identity removal: abandoned-generator spans may close out of
        # order relative to siblings.
        try:
            tracer._stack.remove(self)
        except ValueError:
            pass
        self.end_s = max(self.start_s, tracer.now())
        tracer.spans.append(self)
        return False

    def __repr__(self):
        return ("Span(%s:%s, %.3f..%.3fs, %.3fs charged, %d bytes)"
                % (self.kind, self.name, self.start_s, self.end_s,
                   self.seconds, self.nbytes))


class Tracer:
    """Per-cluster span recorder; off by default."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.enabled = False
        #: finished spans, in completion order.
        self.spans = []
        self._stack = []
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def now(self):
        """The trace time axis: cumulative charged simulated seconds."""
        return self.cluster.ledger.total_seconds

    def enable(self):
        self.enabled = True

    def disable(self):
        self.enabled = False

    def clear(self):
        self.spans = []
        self._stack = []

    # ------------------------------------------------------------------
    def span(self, kind, name, **attrs):
        """Open a span (a context manager); no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, kind, name, attrs)

    def current(self):
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def annotate(self, **attrs):
        """Attach attributes to the innermost open span, if any."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def find(self, kind=None, name=None):
        """Finished spans filtered by kind and/or exact name."""
        return [s for s in self.spans
                if (kind is None or s.kind == kind)
                and (name is None or s.name == name)]
