"""repro.obs: tracing, metrics and profiling for the simulated stack.

Three pieces:

* :class:`Tracer` (``cluster.tracer``) — structured spans over the
  simulated-time axis, disabled by default;
* :class:`MetricsRegistry` (``cluster.metrics``) — always-on counters /
  gauges / histograms (dict operations only, never ledger charges);
* :func:`profiling` — a process-wide collector that force-enables the
  tracer on every cluster created inside the ``with`` block, so bench
  experiments (which build many sessions internally) aggregate into one
  trace + metrics snapshot (``dualtable-bench <fig> --profile DIR``).
"""

from contextlib import contextmanager

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.tracer import NULL_SPAN, Span, Tracer
from repro.obs import export

__all__ = ["Histogram", "MetricsRegistry", "Span", "Tracer", "NULL_SPAN",
           "TraceCollector", "profiling", "active_collector",
           "register_cluster", "export"]

_ACTIVE = None


class TraceCollector:
    """Aggregates tracers/registries of every cluster created under it."""

    def __init__(self):
        self.tracers = []
        self.registries = []

    def adopt(self, cluster):
        cluster.tracer.enable()
        self.tracers.append(cluster.tracer)
        self.registries.append(cluster.metrics)

    def merged_metrics(self):
        merged = MetricsRegistry()
        for registry in self.registries:
            merged.merge(registry)
        return merged

    def span_count(self):
        return sum(len(t.spans) for t in self.tracers)

    def trace_document(self):
        groups = [(i + 1, "cluster-%d" % (i + 1), tracer.spans)
                  for i, tracer in enumerate(self.tracers)]
        return export.trace_document(
            groups, metrics=self.merged_metrics().snapshot())


def active_collector():
    return _ACTIVE


def register_cluster(cluster):
    """Called by Cluster.__init__; enrolls in any active collector."""
    if _ACTIVE is not None:
        _ACTIVE.adopt(cluster)


@contextmanager
def profiling():
    """Force-enable tracing on every cluster created in this block."""
    global _ACTIVE
    collector = TraceCollector()
    previous, _ACTIVE = _ACTIVE, collector
    try:
        yield collector
    finally:
        _ACTIVE = previous
