"""Telemetry dashboard exporter: advisor JSON + standalone HTML.

Two artifacts from one :func:`advisor_document`:

* ``advisor.json`` — the machine-readable advisor document (schema
  ``dualtable.advisor/v1``, checked by
  :func:`validate_advisor_document`): per-table workload profiles,
  sorted findings with evidence, every registry histogram, the full
  counter/gauge snapshot and optional per-statement counter series;
* ``dashboard.html`` — a dependency-free single-file HTML rendering
  with inline SVG sparklines (per-table scan/DML series), log-bucket
  histogram bars and the findings table, in the hand-rolled style of
  :mod:`repro.bench.svg`.

Determinism contract: the document is a pure function of registry
state, handler configuration and the virtual clock — it contains no
wall-clock timestamps, no worker count, no engine name — and the JSON
serialization sorts keys, so a fixed seed yields byte-identical
artifacts across runs, ``workers=1/4`` and ``engine=row/vectorized``.
"""

import json
import os

#: the advisor-document schema tag (bump on breaking changes).
SCHEMA = "dualtable.advisor/v1"

_SEVERITY_COLORS = {"critical": "#d62728", "warn": "#ff7f0e",
                    "info": "#1f77b4"}


def _esc(text):
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


# ----------------------------------------------------------------------
# Document assembly.
# ----------------------------------------------------------------------
def advisor_document(session, findings=None, series=None, workload=None):
    """The full advisor/telemetry document for one session (plain dict).

    ``findings`` may be passed pre-computed (e.g. the result of an
    ``ANALYZE WORKLOAD`` the caller already ran); otherwise the
    advisor runs here.  ``series`` is an optional per-table
    ``{table: {metric: [cumulative values...]}}`` sampled by the
    workload driver (the dashboard's sparklines).
    """
    from repro.advisor import WorkloadAdvisor, build_profiles

    if findings is None:
        findings = WorkloadAdvisor(session).analyze()
    snapshot = session.cluster.metrics.snapshot()
    server = getattr(session, "server", None)
    return {
        "schema": SCHEMA,
        "workload": workload,
        "sim_clock_s": round(session.cluster.clock.now, 6),
        "tables": [profile.as_dict()
                   for profile in build_profiles(session)],
        "findings": [finding.as_dict() for finding in findings],
        "histograms": {name: snapshot["histograms"][name]
                       for name in sorted(snapshot["histograms"])},
        # The wall-clock caches are the one knowingly nondeterministic
        # corner of the registry (hit/miss depends on thread timing, see
        # INTERNALS §6) — their counters stay out of the document so the
        # byte-identical guarantee holds across worker counts.
        "counters": {name: snapshot["counters"][name]
                     for name in sorted(snapshot["counters"])
                     if not name.startswith("cache.")},
        "gauges": {name: snapshot["gauges"][name]
                   for name in sorted(snapshot["gauges"])},
        "server": ([[name, value] for name, value in server.stats_rows()]
                   if server is not None else None),
        "series": series or {},
    }


def metrics_document(snapshot, workload=None, sim_clock_s=0.0):
    """A schema-valid advisor document from a bare registry snapshot.

    ``dualtable-bench --profile`` has a metrics snapshot but no live
    session by the time it writes artifacts, so its dashboard carries
    the histogram/counter/gauge sections with empty tables/findings.
    """
    return {
        "schema": SCHEMA,
        "workload": workload,
        "sim_clock_s": round(float(sim_clock_s), 6),
        "tables": [],
        "findings": [],
        "histograms": {name: snapshot.get("histograms", {})[name]
                       for name in sorted(snapshot.get("histograms", {}))},
        "counters": {name: snapshot.get("counters", {})[name]
                     for name in sorted(snapshot.get("counters", {}))
                     if not name.startswith("cache.")},
        "gauges": {name: snapshot.get("gauges", {})[name]
                   for name in sorted(snapshot.get("gauges", {}))},
        "server": None,
        "series": {},
    }


def to_json(doc):
    """Canonical serialization: sorted keys, stable float formatting."""
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# Schema validation (hand-rolled; no jsonschema dependency).
# ----------------------------------------------------------------------
_TABLE_KEYS = ("table", "mode", "read_factor", "autocompact_on",
               "scans", "dmls", "reads_per_dml", "scan_dml_ratio",
               "attached_bytes", "scan_bytes_hist", "dml_seconds_hist")
_FINDING_KEYS = ("code", "severity", "subject", "summary", "evidence",
                 "remediation")
_HIST_KEYS = ("count", "sum", "mean", "p50", "p95", "p99", "buckets")


def validate_advisor_document(doc):
    """Schema-check an advisor document; returns a list of errors."""
    errors = []
    if not isinstance(doc, dict):
        return ["advisor document must be an object"]
    if doc.get("schema") != SCHEMA:
        errors.append("schema must be %r (got %r)"
                      % (SCHEMA, doc.get("schema")))
    if not isinstance(doc.get("sim_clock_s"), (int, float)):
        errors.append("sim_clock_s must be a number")
    for key in ("tables", "findings"):
        if not isinstance(doc.get(key), list):
            errors.append("%r must be a list" % key)
    for key in ("histograms", "counters", "gauges", "series"):
        if not isinstance(doc.get(key), dict):
            errors.append("%r must be an object" % key)
    if errors:
        return errors
    for i, table in enumerate(doc["tables"]):
        where = "tables[%d]" % i
        if not isinstance(table, dict):
            errors.append("%s must be an object" % where)
            continue
        for key in _TABLE_KEYS:
            if key not in table:
                errors.append("%s: missing %r" % (where, key))
    for i, finding in enumerate(doc["findings"]):
        where = "findings[%d]" % i
        if not isinstance(finding, dict):
            errors.append("%s must be an object" % where)
            continue
        for key in _FINDING_KEYS:
            if key not in finding:
                errors.append("%s: missing %r" % (where, key))
        if finding.get("severity") not in _SEVERITY_COLORS:
            errors.append("%s: bad severity %r"
                          % (where, finding.get("severity")))
        if not isinstance(finding.get("remediation"), list):
            errors.append("%s: remediation must be a list" % where)
    for name, hist in doc["histograms"].items():
        where = "histograms[%r]" % name
        if not isinstance(hist, dict):
            errors.append("%s must be an object" % where)
            continue
        for key in _HIST_KEYS:
            if key not in hist:
                errors.append("%s: missing %r" % (where, key))
    server = doc.get("server")
    if server is not None and not isinstance(server, list):
        errors.append("'server' must be null or a list of [stat, value]")
    return errors


# ----------------------------------------------------------------------
# Inline SVG helpers.
# ----------------------------------------------------------------------
def _sparkline(values, width=180, height=40, color="#1f77b4"):
    """A minimal polyline sparkline of a cumulative series."""
    if not values:
        return '<span class="empty">no samples</span>'
    vmin, vmax = min(values), max(values)
    span = (vmax - vmin) or 1.0
    n = len(values)
    points = " ".join(
        "%.1f,%.1f" % (2 + (width - 4) * (i / max(1, n - 1)),
                       height - 3 - (height - 6) * ((v - vmin) / span))
        for i, v in enumerate(values))
    return ('<svg width="%d" height="%d" viewBox="0 0 %d %d">'
            '<polyline points="%s" fill="none" stroke="%s" '
            'stroke-width="1.5"/></svg>'
            % (width, height, width, height, points, color))


def _hist_bars(hist, width=220, height=56):
    """Log-bucket histogram bars (bucket order is ascending value)."""
    buckets = hist.get("buckets") or {}
    if not buckets:
        return '<span class="empty">empty</span>'
    ordered = sorted(buckets.items(),
                     key=lambda kv: (kv[0] != "zero", int(kv[0])
                                     if kv[0] != "zero" else 0))
    peak = max(count for _, count in ordered)
    bar_w = max(2.0, (width - 2) / len(ordered) - 1)
    parts = ['<svg width="%d" height="%d" viewBox="0 0 %d %d">'
             % (width, height, width, height)]
    for i, (_, count) in enumerate(ordered):
        bar_h = (height - 14) * count / peak
        parts.append('<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f"'
                     ' fill="#1f77b4"/>'
                     % (1 + i * (bar_w + 1), height - 12 - bar_h,
                        bar_w, bar_h))
    parts.append('<text x="1" y="%d" font-size="9" fill="#555">'
                 'p50=%.3g p95=%.3g p99=%.3g n=%d</text>'
                 % (height - 2, hist.get("p50", 0), hist.get("p95", 0),
                    hist.get("p99", 0), hist.get("count", 0)))
    parts.append("</svg>")
    return "".join(parts)


# ----------------------------------------------------------------------
# HTML rendering.
# ----------------------------------------------------------------------
_STYLE = """
body { font-family: sans-serif; margin: 24px; color: #222; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }
table { border-collapse: collapse; margin: 8px 0; }
th, td { border: 1px solid #ccc; padding: 4px 8px; font-size: 12px;
         text-align: left; vertical-align: top; }
th { background: #f0f0f0; }
.sev { font-weight: bold; }
.meta { color: #666; font-size: 12px; }
.empty { color: #999; font-size: 11px; }
code { background: #f6f6f6; padding: 1px 3px; }
"""


def render_dashboard_html(doc):
    """Render an advisor document as a standalone HTML page."""
    parts = ["<!DOCTYPE html><html><head><meta charset='utf-8'>",
             "<title>DualTable telemetry dashboard</title>",
             "<style>%s</style></head><body>" % _STYLE,
             "<h1>DualTable telemetry dashboard</h1>",
             "<p class='meta'>schema %s · workload %s · simulated "
             "clock %.3f s</p>"
             % (_esc(doc.get("schema")),
                _esc(doc.get("workload") or "-"),
                doc.get("sim_clock_s", 0.0))]

    parts.append("<h2>Findings (%d)</h2>" % len(doc["findings"]))
    if doc["findings"]:
        parts.append("<table><tr><th>severity</th><th>code</th>"
                     "<th>subject</th><th>summary</th>"
                     "<th>remediation</th></tr>")
        for finding in doc["findings"]:
            color = _SEVERITY_COLORS.get(finding["severity"], "#222")
            remediation = "<br>".join(
                "<code>%s</code>" % _esc(sql)
                for sql in finding["remediation"]) or "&mdash;"
            parts.append(
                "<tr><td class='sev' style='color:%s'>%s</td>"
                "<td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>"
                % (color, _esc(finding["severity"]),
                   _esc(finding["code"]), _esc(finding["subject"]),
                   _esc(finding["summary"]), remediation))
        parts.append("</table>")
    else:
        parts.append("<p class='empty'>no findings — the workload and "
                     "the configuration agree</p>")

    parts.append("<h2>Tables (%d)</h2>" % len(doc["tables"]))
    series = doc.get("series") or {}
    for table in doc["tables"]:
        name = table["table"]
        parts.append("<h3>%s</h3>" % _esc(name))
        parts.append(
            "<p class='meta'>mode=%s read_factor=%s autocompact=%s · "
            "%s scans / %s DMLs (%.2f per DML EWMA) · attached "
            "%s bytes · %s compactions</p>"
            % (_esc(table["mode"]), table["read_factor"],
               "on" if table["autocompact_on"] else "off",
               table["scans"], table["dmls"], table["reads_per_dml"],
               table["attached_bytes"], table.get("compacts", 0)))
        table_series = series.get(name) or {}
        cells = []
        for metric in sorted(table_series):
            cells.append("<td>%s<br>%s</td>"
                         % (_esc(metric),
                            _sparkline(table_series[metric])))
        cells.append("<td>scan bytes<br>%s</td>"
                     % _hist_bars(table["scan_bytes_hist"]))
        cells.append("<td>DML seconds<br>%s</td>"
                     % _hist_bars(table["dml_seconds_hist"]))
        parts.append("<table><tr>%s</tr></table>" % "".join(cells))

    latency = doc["histograms"].get("statement.seconds")
    if latency:
        parts.append("<h2>Statement latency (simulated)</h2>")
        parts.append("<table><tr><td>statement.seconds<br>%s</td>"
                     "</tr></table>" % _hist_bars(latency))

    if doc.get("server") is not None:
        parts.append("<h2>Server admission</h2>")
        parts.append("<table><tr><th>stat</th><th>value</th></tr>")
        for stat, value in doc["server"]:
            parts.append("<tr><td>%s</td><td>%s</td></tr>"
                         % (_esc(stat), _esc(value)))
        parts.append("</table>")

    parts.append("</body></html>")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# File output.
# ----------------------------------------------------------------------
def write_dashboard(directory, doc, html_name="dashboard.html",
                    json_name="advisor.json"):
    """Write the HTML + JSON pair; returns ``(html_path, json_path)``."""
    os.makedirs(directory, exist_ok=True)
    html_path = os.path.join(directory, html_name)
    json_path = os.path.join(directory, json_name)
    with open(html_path, "w") as handle:
        handle.write(render_dashboard_html(doc))
    with open(json_path, "w") as handle:
        handle.write(to_json(doc))
    return html_path, json_path
