"""Chrome trace-event JSON export and schema validation.

Traces load in ``chrome://tracing`` / Perfetto: each span becomes one
complete event (``ph: "X"``) whose timestamps are the simulated-time axis
in microseconds.  One traced cluster = one pid; span nesting inside a pid
follows time containment, which the tracer guarantees (child spans open
and close within their parent on the cumulative-charge axis).

``validate_trace`` is the schema check used by tests and by
``scripts/validate_trace.py`` in CI.
"""

import json

#: simulated seconds -> trace microseconds.
_US = 1e6

#: the span hierarchy the validator enforces (parent kinds allowed).
#: Engine statement spans are roots when standalone, children of the
#: PR-6 ``server.statement`` span under a DualTableServer, and nested
#: under statement/phase when executed reentrantly (EXPLAIN ANALYZE,
#: MERGE, advisor remediations).
_PARENT_KINDS = {
    "task": {"job"},
    "job": {"statement", "phase"},
    "phase": {"statement", "phase", "job", "task"},
    "substrate": {"statement", "phase", "job", "task", "substrate",
                  "server"},
    "statement": {"server", "statement", "phase"},
}


def span_event(span, pid=1, tid=1):
    """One span as a Chrome complete event."""
    args = {"span_id": span.span_id, "parent_id": span.parent_id,
            "seconds": round(span.seconds, 6),
            "hbase_seconds": round(span.hbase_seconds, 6),
            "bytes": span.nbytes, "ops": span.nops}
    for key, value in span.attrs.items():
        if value is not None:
            args.setdefault(key, value)
    return {
        "name": span.name,
        "cat": span.kind,
        "ph": "X",
        "ts": round(span.start_s * _US, 3),
        "dur": round(span.duration_s * _US, 3),
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def trace_document(groups, metrics=None):
    """Assemble a trace from ``(pid, label, spans)`` groups."""
    events = []
    for pid, label, spans in groups:
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "ts": 0,
                       "args": {"name": label}})
        events.extend(span_event(span, pid=pid) for span in spans)
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        doc["otherData"] = {"metrics": metrics}
    return doc


def tracer_trace(tracer, metrics=None, label="cluster"):
    """Trace document for one cluster's tracer."""
    return trace_document([(1, label, tracer.spans)], metrics=metrics)


def write_trace(path, doc):
    """Write a trace document as JSON; returns the path."""
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1, default=str)
    return path


# ----------------------------------------------------------------------
# Validation (the CI schema check).
# ----------------------------------------------------------------------
def validate_trace(doc, require_kinds=()):
    """Check a trace document; returns a list of error strings.

    Validates the Chrome trace-event envelope, per-event fields, and —
    via the ``span_id``/``parent_id`` args the exporter embeds — that the
    span hierarchy nests correctly in both ancestry (a task's parent is a
    job, a job's a statement/phase) and time containment.
    ``require_kinds`` additionally demands at least one span of each
    listed kind (the CI smoke requires the full statement → job → task →
    substrate chain).
    """
    errors = []
    if not isinstance(doc, dict) or not isinstance(
            doc.get("traceEvents"), list):
        return ["trace must be an object with a 'traceEvents' list"]
    events = doc["traceEvents"]
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        errors.append("trace has no complete ('X') span events")
    by_id = {}
    for i, event in enumerate(events):
        where = "event %d (%r)" % (i, event.get("name"))
        for field in ("name", "ph", "pid", "tid", "ts"):
            if field not in event:
                errors.append("%s: missing %r" % (where, field))
        if event.get("ph") != "X":
            continue
        if not isinstance(event.get("dur"), (int, float)) \
                or event["dur"] < 0:
            errors.append("%s: 'X' event needs a non-negative dur" % where)
        if "cat" not in event:
            errors.append("%s: span event needs a 'cat' kind" % where)
        args = event.get("args") or {}
        span_id = args.get("span_id")
        if span_id is None:
            errors.append("%s: span event needs args.span_id" % where)
        else:
            by_id[(event.get("pid"), span_id)] = event
    for event in spans:
        args = event.get("args") or {}
        parent_id = args.get("parent_id")
        where = "span %r (id %s)" % (event.get("name"), args.get("span_id"))
        kind = event.get("cat")
        if parent_id is None:
            if kind in ("task",):
                errors.append("%s: %s span must have a parent" % (where, kind))
            continue
        parent = by_id.get((event.get("pid"), parent_id))
        if parent is None:
            errors.append("%s: parent %s not in trace" % (where, parent_id))
            continue
        allowed = _PARENT_KINDS.get(kind)
        if allowed is not None and parent.get("cat") not in allowed:
            errors.append("%s: %s span nested under %s (allowed: %s)"
                          % (where, kind, parent.get("cat"),
                             "/".join(sorted(allowed))))
        # ts and dur are each rounded to 1e-3 us independently on both
        # the child and the parent, so endpoint error can reach 2e-3.
        eps = 5e-3
        if event["ts"] < parent["ts"] - eps or \
                event["ts"] + event["dur"] > parent["ts"] + parent["dur"] + eps:
            errors.append("%s: not time-contained in parent %r"
                          % (where, parent.get("name")))
    present = {e.get("cat") for e in spans}
    for kind in require_kinds:
        if kind not in present:
            errors.append("trace has no %r spans" % kind)
    return errors


def validate_server_spans(doc):
    """Validate the PR-6 server spans; returns a list of error strings.

    Every ``server``/``statement`` span wraps one engine execution, so
    it must contain at least one child ``statement`` span (the handler
    side of the statement), and at least one such span in the trace
    must have nonzero duration — a server trace where every statement
    is free means the sim axis never reached the exporter.
    """
    if not isinstance(doc, dict) or not isinstance(
            doc.get("traceEvents"), list):
        return ["trace must be an object with a 'traceEvents' list"]
    spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    children = {}
    for event in spans:
        args = event.get("args") or {}
        parent = args.get("parent_id")
        if parent is not None:
            children.setdefault((event.get("pid"), parent),
                                []).append(event)
    server_stmts = [e for e in spans
                    if e.get("cat") == "server"
                    and e.get("name") == "statement"]
    if not server_stmts:
        return ["trace has no server.statement spans"]
    errors = []
    saw_duration = False
    for event in server_stmts:
        args = event.get("args") or {}
        where = ("server.statement span (id %s, session %s)"
                 % (args.get("span_id"), args.get("session")))
        kids = children.get((event.get("pid"), args.get("span_id")), [])
        if not any(k.get("cat") == "statement" for k in kids):
            errors.append("%s: no child statement span" % where)
        if event.get("dur", 0) > 0:
            saw_duration = True
    if not saw_duration:
        errors.append("every server.statement span has zero duration")
    return errors


def load_trace(path):
    with open(path) as handle:
        return json.load(handle)
