"""Metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` lives on every cluster (``cluster.metrics``)
and is always on — recording a metric is a dict operation, never a ledger
charge, so instrumentation cannot perturb simulated time.  The registry
complements the :class:`~repro.cluster.ledger.MetricsLedger`: the ledger
answers "how many bytes/seconds did device X cost", the registry answers
"how many times did event Y happen" (plan choices, fault firings, task
retries, WAL replays, COMPACT folds...).

Metric names are dotted paths (``dualtable.plan.edit``,
``mapreduce.task_retries``); see docs/INTERNALS.md for the taxonomy.

Thread safety: all uncaptured mutations take a registry-wide lock.  A
bare ``defaultdict[name] += 1`` is a read-modify-write that loses
updates under preemption, which showed up once the server admitted many
sessions against one cluster (the PR-3 join NULL-key sentinel was the
same class of bug).  The capture path needs no lock — capture buffers
are thread-local by construction.
"""

import math
import threading

from collections import defaultdict

#: log-bucket resolution: boundaries at 10**(i / _BUCKETS_PER_DECADE).
#: Fixed for the life of the metric format — quantile estimates are a
#: pure function of the bucket counts, so any two runs that observe the
#: same multiset of values report byte-identical p50/p95/p99 regardless
#: of observation order, worker count or execution engine.
_BUCKETS_PER_DECADE = 5


def bucket_index(value):
    """The fixed log-bucket index of a positive value.

    Bucket ``i`` covers ``(10**((i-1)/K), 10**(i/K)]`` with
    ``K = _BUCKETS_PER_DECADE``; zero and negative values go to the
    reserved ``None`` bucket (they have no logarithm).
    """
    if value <= 0.0:
        return None
    # ceil on the log axis, nudged so exact boundaries stay in their
    # own bucket (10**(i/K) -> bucket i, not i+1).
    return math.ceil(math.log10(value) * _BUCKETS_PER_DECADE - 1e-9)


def bucket_upper_bound(index):
    """Upper boundary of log bucket ``index`` (0.0 for the zero bucket)."""
    if index is None:
        return 0.0
    return 10.0 ** (index / _BUCKETS_PER_DECADE)


class Histogram:
    """Streaming summary of observed values: count/sum/min/max plus
    fixed log-bucket counts for deterministic quantiles.

    Quantiles are read from the bucket table (the reported pXX is the
    upper boundary of the bucket holding that rank), so they are exactly
    reproducible: same observed values — in any order — give the same
    p50/p95/p99 to the last bit.  See docs/INTERNALS.md §11.
    """

    __slots__ = ("count", "total", "vmin", "vmax", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.vmin = None
        self.vmax = None
        #: log-bucket index -> count; None is the <= 0 bucket.
        self.buckets = {}

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, q):
        """Deterministic quantile estimate from the log buckets.

        Returns the upper boundary of the bucket containing the
        ``ceil(q * count)``-th smallest observation (the zero bucket
        reports 0.0).  Exact to bucket resolution (~58% per bucket at
        5 buckets/decade), and independent of observation order.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        # None (the <=0 bucket) sorts first: those are the smallest.
        for index in sorted(self.buckets,
                            key=lambda i: (i is not None, i)):
            seen += self.buckets[index]
            if seen >= rank:
                return bucket_upper_bound(index)
        return bucket_upper_bound(max(i for i in self.buckets
                                      if i is not None)) \
            if any(i is not None for i in self.buckets) else 0.0

    @property
    def p50(self):
        return self.quantile(0.50)

    @property
    def p95(self):
        return self.quantile(0.95)

    @property
    def p99(self):
        return self.quantile(0.99)

    def bucket_rows(self):
        """``(upper_bound, count)`` rows in ascending-bucket order."""
        return [(bucket_upper_bound(index), self.buckets[index])
                for index in sorted(self.buckets,
                                    key=lambda i: (i is not None, i))]

    def as_dict(self):
        return {"count": self.count, "sum": self.total,
                "mean": self.mean, "min": self.vmin, "max": self.vmax,
                "p50": self.p50, "p95": self.p95, "p99": self.p99,
                "buckets": {("zero" if index is None else str(index)):
                            self.buckets[index]
                            for index in sorted(
                                self.buckets,
                                key=lambda i: (i is not None, i))}}

    def merge(self, other):
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.vmin = other.vmin if self.vmin is None \
            else min(self.vmin, other.vmin)
        self.vmax = other.vmax if self.vmax is None \
            else max(self.vmax, other.vmax)
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    def __repr__(self):
        return ("Histogram(count=%d, mean=%.4g, p95=%.4g, min=%s, max=%s)"
                % (self.count, self.mean, self.p95, self.vmin, self.vmax))


class MetricsRegistry:
    """Counters, gauges and histograms for one simulated cluster."""

    def __init__(self):
        self.counters = defaultdict(int)
        self.gauges = {}
        self.histograms = {}
        self._lock = threading.Lock()
        #: optional thread-local capture stack shared with the owning
        #: cluster (repro.parallel): while a recorder is pushed on the
        #: calling thread, events are buffered instead of applied so a
        #: parallel task's metrics can be replayed in task order.
        self._capture_tls = None

    def bind_capture(self, tls):
        """Share the cluster's thread-local capture stack."""
        self._capture_tls = tls

    def _capture_buffer(self):
        tls = self._capture_tls
        if tls is None:
            return None
        stack = getattr(tls, "stack", None)
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def incr(self, name, amount=1):
        buffer = self._capture_buffer()
        if buffer is not None:
            buffer.add_event("incr", name, amount)
            return
        with self._lock:
            self.counters[name] += amount

    def gauge(self, name, value):
        buffer = self._capture_buffer()
        if buffer is not None:
            buffer.add_event("gauge", name, value)
            return
        with self._lock:
            self.gauges[name] = value

    def observe(self, name, value):
        buffer = self._capture_buffer()
        if buffer is not None:
            buffer.add_event("observe", name, value)
            return
        with self._lock:
            self._observe_locked(name, value)

    def _observe_locked(self, name, value):
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def replay(self, events):
        """Apply captured ``(kind, name, value)`` events in order.

        Respects any capture active on the *calling* thread, so nested
        replays bubble out one level at a time (see repro.parallel).
        """
        buffer = self._capture_buffer()
        if buffer is not None:
            buffer.events.extend(events)
            return
        with self._lock:
            for kind, name, value in events:
                if kind == "incr":
                    self.counters[name] += value
                elif kind == "observe":
                    self._observe_locked(name, value)
                else:
                    self.gauges[name] = value

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def counter(self, name):
        return self.counters.get(name, 0)

    def histogram(self, name):
        return self.histograms.get(name)

    def snapshot(self):
        """A plain-dict dump (JSON-serializable)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {name: h.as_dict()
                               for name, h in self.histograms.items()},
            }

    def rows(self, like=None):
        """``(metric, type, value)`` rows for table rendering.

        Ordering is deterministic: sorted by (name, type) only — values
        never participate in the comparison, so mixed value types can't
        make the sort order depend on dict insertion history.  ``like``
        filters names with glob semantics (``SHOW METRICS LIKE
        'server.*'``); a pattern without a wildcard is treated as a
        prefix filter.
        """
        with self._lock:
            rows = [(name, "counter", value)
                    for name, value in self.counters.items()]
            rows += [(name, "gauge", value)
                     for name, value in self.gauges.items()]
            rows += [(name, "histogram",
                      "count=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g "
                      "min=%.4g max=%.4g"
                      % (h.count, h.mean, h.p50, h.p95, h.p99,
                         h.vmin or 0.0, h.vmax or 0.0))
                     for name, h in self.histograms.items()]
        if like is not None:
            import fnmatch
            pattern = like if any(c in like for c in "*?[") else like + "*"
            rows = [r for r in rows if fnmatch.fnmatchcase(r[0], pattern)]
        return sorted(rows, key=lambda r: (r[0], r[1]))

    # ------------------------------------------------------------------
    # Aggregation / lifecycle.
    # ------------------------------------------------------------------
    def merge(self, other):
        """Fold another registry into this one (profile aggregation)."""
        with self._lock:
            for name, value in other.counters.items():
                self.counters[name] += value
            self.gauges.update(other.gauges)
            for name, hist in other.histograms.items():
                mine = self.histograms.get(name)
                if mine is None:
                    mine = self.histograms[name] = Histogram()
                mine.merge(hist)

    def reset(self):
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()

    def reset_gauges(self, prefix):
        """Drop every gauge whose name starts with ``prefix``.

        Gauges are *owned* by the subsystem that sets them (a queue
        depth belongs to one server instance, not to the cluster), so a
        new owner clears its namespace on construction — otherwise a
        fresh server inherits the last instance's residue in snapshots.
        """
        with self._lock:
            for name in [n for n in self.gauges if n.startswith(prefix)]:
                del self.gauges[name]
