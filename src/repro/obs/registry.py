"""Metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` lives on every cluster (``cluster.metrics``)
and is always on — recording a metric is a dict operation, never a ledger
charge, so instrumentation cannot perturb simulated time.  The registry
complements the :class:`~repro.cluster.ledger.MetricsLedger`: the ledger
answers "how many bytes/seconds did device X cost", the registry answers
"how many times did event Y happen" (plan choices, fault firings, task
retries, WAL replays, COMPACT folds...).

Metric names are dotted paths (``dualtable.plan.edit``,
``mapreduce.task_retries``); see docs/INTERNALS.md for the taxonomy.

Thread safety: all uncaptured mutations take a registry-wide lock.  A
bare ``defaultdict[name] += 1`` is a read-modify-write that loses
updates under preemption, which showed up once the server admitted many
sessions against one cluster (the PR-3 join NULL-key sentinel was the
same class of bug).  The capture path needs no lock — capture buffers
are thread-local by construction.
"""

import threading

from collections import defaultdict


class Histogram:
    """Streaming summary of observed values: count/sum/min/max."""

    __slots__ = ("count", "total", "vmin", "vmax")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.vmin = None
        self.vmax = None

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def as_dict(self):
        return {"count": self.count, "sum": self.total,
                "mean": self.mean, "min": self.vmin, "max": self.vmax}

    def merge(self, other):
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.vmin = other.vmin if self.vmin is None \
            else min(self.vmin, other.vmin)
        self.vmax = other.vmax if self.vmax is None \
            else max(self.vmax, other.vmax)

    def __repr__(self):
        return ("Histogram(count=%d, mean=%.4g, min=%s, max=%s)"
                % (self.count, self.mean, self.vmin, self.vmax))


class MetricsRegistry:
    """Counters, gauges and histograms for one simulated cluster."""

    def __init__(self):
        self.counters = defaultdict(int)
        self.gauges = {}
        self.histograms = {}
        self._lock = threading.Lock()
        #: optional thread-local capture stack shared with the owning
        #: cluster (repro.parallel): while a recorder is pushed on the
        #: calling thread, events are buffered instead of applied so a
        #: parallel task's metrics can be replayed in task order.
        self._capture_tls = None

    def bind_capture(self, tls):
        """Share the cluster's thread-local capture stack."""
        self._capture_tls = tls

    def _capture_buffer(self):
        tls = self._capture_tls
        if tls is None:
            return None
        stack = getattr(tls, "stack", None)
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def incr(self, name, amount=1):
        buffer = self._capture_buffer()
        if buffer is not None:
            buffer.add_event("incr", name, amount)
            return
        with self._lock:
            self.counters[name] += amount

    def gauge(self, name, value):
        buffer = self._capture_buffer()
        if buffer is not None:
            buffer.add_event("gauge", name, value)
            return
        with self._lock:
            self.gauges[name] = value

    def observe(self, name, value):
        buffer = self._capture_buffer()
        if buffer is not None:
            buffer.add_event("observe", name, value)
            return
        with self._lock:
            self._observe_locked(name, value)

    def _observe_locked(self, name, value):
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def replay(self, events):
        """Apply captured ``(kind, name, value)`` events in order.

        Respects any capture active on the *calling* thread, so nested
        replays bubble out one level at a time (see repro.parallel).
        """
        buffer = self._capture_buffer()
        if buffer is not None:
            buffer.events.extend(events)
            return
        with self._lock:
            for kind, name, value in events:
                if kind == "incr":
                    self.counters[name] += value
                elif kind == "observe":
                    self._observe_locked(name, value)
                else:
                    self.gauges[name] = value

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def counter(self, name):
        return self.counters.get(name, 0)

    def histogram(self, name):
        return self.histograms.get(name)

    def snapshot(self):
        """A plain-dict dump (JSON-serializable)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {name: h.as_dict()
                               for name, h in self.histograms.items()},
            }

    def rows(self):
        """``(metric, type, value)`` rows for table rendering."""
        with self._lock:
            rows = [(name, "counter", value)
                    for name, value in self.counters.items()]
            rows += [(name, "gauge", value)
                     for name, value in self.gauges.items()]
            rows += [(name, "histogram",
                      "count=%d mean=%.4g min=%.4g max=%.4g"
                      % (h.count, h.mean, h.vmin or 0.0, h.vmax or 0.0))
                     for name, h in self.histograms.items()]
        return sorted(rows)

    # ------------------------------------------------------------------
    # Aggregation / lifecycle.
    # ------------------------------------------------------------------
    def merge(self, other):
        """Fold another registry into this one (profile aggregation)."""
        with self._lock:
            for name, value in other.counters.items():
                self.counters[name] += value
            self.gauges.update(other.gauges)
            for name, hist in other.histograms.items():
                mine = self.histograms.get(name)
                if mine is None:
                    mine = self.histograms[name] = Histogram()
                mine.merge(hist)

    def reset(self):
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
