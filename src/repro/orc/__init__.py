"""ORC-like columnar file format: stripes, stats, projection, pruning."""

from repro.orc.reader import OrcReader, StripeInfo
from repro.orc.writer import DEFAULT_STRIPE_ROWS, OrcWriter, write_orc

__all__ = [
    "OrcReader",
    "StripeInfo",
    "OrcWriter",
    "write_orc",
    "DEFAULT_STRIPE_ROWS",
]
