"""ORC-like file writer: stripes, per-column streams, statistics, metadata.

File layout (all offsets absolute):

.. code-block:: text

    [stripe 0 streams][stripe 1 streams]...[footer JSON][footer_len u64][MAGIC]

The footer records the schema, user metadata (DualTable stores its file ID
here), and per-stripe directory entries: row count plus, for each column,
the stream's (offset, length, statistics).  Statistics carry count, null
count, min, max and — for numeric columns — sum, enabling stripe-level
predicate pushdown in the reader.
"""

import json
import struct

from repro.common.errors import OrcError
from repro.orc.encodings import ENCODERS

MAGIC = b"ORCSIM1\x00"
DEFAULT_STRIPE_ROWS = 5000

_VALID_KINDS = ("int", "double", "string", "boolean")


def _column_stats(kind, values):
    non_null = [v for v in values if v is not None]
    stats = {
        "count": len(values),
        "nulls": len(values) - len(non_null),
        "min": None,
        "max": None,
        "ndv": 0,
    }
    if non_null:
        stats["min"] = min(non_null)
        stats["max"] = max(non_null)
        stats["ndv"] = len(set(non_null))
        if kind in ("int", "double"):
            stats["sum"] = sum(non_null)
    return stats


def _merge_stats(kind, a, b):
    merged = {
        "count": a["count"] + b["count"],
        "nulls": a["nulls"] + b["nulls"],
        "min": a["min"],
        "max": a["max"],
        # NDV cannot be merged exactly; the sum is a safe upper bound.
        "ndv": a.get("ndv", 0) + b.get("ndv", 0),
    }
    for key, pick in (("min", min), ("max", max)):
        left, right = a[key], b[key]
        if left is None:
            merged[key] = right
        elif right is None:
            merged[key] = left
        else:
            merged[key] = pick(left, right)
    if kind in ("int", "double"):
        merged["sum"] = a.get("sum", 0) + b.get("sum", 0)
    return merged


class OrcWriter:
    """Buffers rows and serializes them into an ORC-like byte string.

    ``schema`` is a list of ``(name, kind)`` pairs with kind one of
    ``int``, ``double``, ``string``, ``boolean``.  Rows are tuples in
    schema order.
    """

    def __init__(self, schema, stripe_rows=DEFAULT_STRIPE_ROWS, metadata=None):
        if not schema:
            raise OrcError("schema must have at least one column")
        for name, kind in schema:
            if kind not in _VALID_KINDS:
                raise OrcError("unsupported column kind %r for %r" % (kind, name))
        self.schema = [(str(name), kind) for name, kind in schema]
        self.stripe_rows = int(stripe_rows)
        if self.stripe_rows <= 0:
            raise OrcError("stripe_rows must be positive")
        self.metadata = dict(metadata or {})
        self._columns = [[] for _ in self.schema]
        self._stripes = []
        self._body = bytearray()
        self._num_rows = 0
        self._finished = False

    def write_row(self, row):
        if self._finished:
            raise OrcError("writer already finished")
        if len(row) != len(self.schema):
            raise OrcError(
                "row arity %d != schema arity %d" % (len(row), len(self.schema)))
        for col, value in zip(self._columns, row):
            col.append(value)
        self._num_rows += 1
        if len(self._columns[0]) >= self.stripe_rows:
            self._flush_stripe()

    def write_rows(self, rows):
        for row in rows:
            self.write_row(row)

    def _flush_stripe(self):
        n = len(self._columns[0])
        if n == 0:
            return
        stripe = {"offset": len(self._body), "num_rows": n, "columns": []}
        for (name, kind), values in zip(self.schema, self._columns):
            stream = ENCODERS[kind](values)
            stripe["columns"].append({
                "offset": len(self._body),
                "length": len(stream),
                "stats": _column_stats(kind, values),
            })
            self._body.extend(stream)
        stripe["length"] = len(self._body) - stripe["offset"]
        self._stripes.append(stripe)
        self._columns = [[] for _ in self.schema]

    def finish(self):
        """Flush pending rows and return the complete file bytes."""
        if self._finished:
            raise OrcError("writer already finished")
        self._flush_stripe()
        self._finished = True
        file_stats = []
        for idx, (name, kind) in enumerate(self.schema):
            agg = None
            for stripe in self._stripes:
                stats = stripe["columns"][idx]["stats"]
                agg = stats if agg is None else _merge_stats(kind, agg, stats)
            file_stats.append(agg or _column_stats(kind, []))
        footer = {
            "schema": self.schema,
            "num_rows": self._num_rows,
            "metadata": self.metadata,
            "stripes": self._stripes,
            "column_stats": file_stats,
        }
        footer_bytes = json.dumps(footer, separators=(",", ":")).encode("utf-8")
        return (bytes(self._body) + footer_bytes
                + struct.pack("<Q", len(footer_bytes)) + MAGIC)

    @property
    def num_rows(self):
        return self._num_rows


def write_orc(schema, rows, stripe_rows=DEFAULT_STRIPE_ROWS, metadata=None):
    """One-shot helper: serialize ``rows`` and return the file bytes."""
    writer = OrcWriter(schema, stripe_rows=stripe_rows, metadata=metadata)
    writer.write_rows(rows)
    return writer.finish()
