"""Column stream encodings for the ORC-like file format.

Implements the encodings that give ORC its compactness:

* integers: zigzag varints with run-length encoding of repeats and deltas,
* doubles: fixed 8-byte IEEE754,
* strings: dictionary encoding when the column repeats, direct otherwise,
* booleans: bit packing,

each preceded by a null-presence bitmap and finally compressed with zlib.
Values decode to exactly what was encoded (round-trip property-tested).
"""

import struct
import zlib

from repro.common.errors import OrcError

_DIRECT = 0
_DICT = 1


# ----------------------------------------------------------------------
# Varint / zigzag primitives.
# ----------------------------------------------------------------------
def _zigzag(n):
    return (n << 1) ^ (n >> 63) if n >= 0 else ((-n) << 1) - 1


def _unzigzag(z):
    return (z >> 1) if (z & 1) == 0 else -((z + 1) >> 1)


def write_varint(buf, value):
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def read_varint(data, pos):
    shift = 0
    result = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


# ----------------------------------------------------------------------
# Null bitmap.
# ----------------------------------------------------------------------
def _pack_bits(flags):
    out = bytearray()
    byte = 0
    for i, flag in enumerate(flags):
        if flag:
            byte |= 1 << (i & 7)
        if (i & 7) == 7:
            out.append(byte)
            byte = 0
    if len(flags) & 7:
        out.append(byte)
    return bytes(out)


def _unpack_bits(data, count):
    return [bool(data[i >> 3] & (1 << (i & 7))) for i in range(count)]


# ----------------------------------------------------------------------
# Integer column: RLE over zigzag deltas.
# ----------------------------------------------------------------------
def encode_int_column(values):
    present = [v is not None for v in values]
    buf = bytearray()
    write_varint(buf, len(values))
    bitmap = _pack_bits(present)
    write_varint(buf, len(bitmap))
    buf.extend(bitmap)
    ints = [v for v in values if v is not None]
    # RLE runs: (repeat_count, first_value, delta); literal runs fall back
    # to delta-encoding each value against its predecessor.
    i, n = 0, len(ints)
    runs = []
    while i < n:
        j = i + 1
        if j < n:
            delta = ints[j] - ints[i]
            while j + 1 < n and ints[j + 1] - ints[j] == delta:
                j += 1
        if j - i >= 2:
            runs.append(("run", j - i + 1, ints[i], delta))
            i = j + 1
        else:
            start = i
            while i < n:
                j = i + 1
                if j < n:
                    delta = ints[j] - ints[i]
                    k = j
                    while k + 1 < n and ints[k + 1] - ints[k] == delta:
                        k += 1
                    if k - i >= 2:
                        break
                i += 1
            runs.append(("lit", ints[start:i]))
    write_varint(buf, len(runs))
    for run in runs:
        if run[0] == "run":
            _, count, first, delta = run
            buf.append(1)
            write_varint(buf, count)
            write_varint(buf, _zigzag(first))
            write_varint(buf, _zigzag(delta))
        else:
            literals = run[1]
            buf.append(0)
            write_varint(buf, len(literals))
            prev = 0
            for v in literals:
                write_varint(buf, _zigzag(v - prev))
                prev = v
    return zlib.compress(bytes(buf))


def decode_int_column(data):
    raw = zlib.decompress(data)
    pos = 0
    count, pos = read_varint(raw, pos)
    bitmap_len, pos = read_varint(raw, pos)
    present = _unpack_bits(raw[pos:pos + bitmap_len], count)
    pos += bitmap_len
    nruns, pos = read_varint(raw, pos)
    ints = []
    for _ in range(nruns):
        kind = raw[pos]
        pos += 1
        if kind == 1:
            run_len, pos = read_varint(raw, pos)
            z, pos = read_varint(raw, pos)
            first = _unzigzag(z)
            z, pos = read_varint(raw, pos)
            delta = _unzigzag(z)
            ints.extend(first + delta * k for k in range(run_len))
        else:
            nlit, pos = read_varint(raw, pos)
            prev = 0
            for _ in range(nlit):
                z, pos = read_varint(raw, pos)
                prev += _unzigzag(z)
                ints.append(prev)
    out = []
    it = iter(ints)
    for flag in present:
        out.append(next(it) if flag else None)
    return out


# ----------------------------------------------------------------------
# Double column.
# ----------------------------------------------------------------------
def encode_double_column(values):
    present = [v is not None for v in values]
    buf = bytearray()
    write_varint(buf, len(values))
    bitmap = _pack_bits(present)
    write_varint(buf, len(bitmap))
    buf.extend(bitmap)
    doubles = [float(v) for v in values if v is not None]
    buf.extend(struct.pack("<%dd" % len(doubles), *doubles))
    return zlib.compress(bytes(buf))


def decode_double_column(data):
    raw = zlib.decompress(data)
    pos = 0
    count, pos = read_varint(raw, pos)
    bitmap_len, pos = read_varint(raw, pos)
    present = _unpack_bits(raw[pos:pos + bitmap_len], count)
    pos += bitmap_len
    n_present = sum(present)
    doubles = struct.unpack_from("<%dd" % n_present, raw, pos)
    out = []
    it = iter(doubles)
    for flag in present:
        out.append(next(it) if flag else None)
    return out


# ----------------------------------------------------------------------
# String column: dictionary or direct.
# ----------------------------------------------------------------------
def encode_string_column(values):
    present = [v is not None for v in values]
    strings = [v for v in values if v is not None]
    distinct = set(strings)
    use_dict = strings and len(distinct) <= max(16, len(strings) // 2)
    buf = bytearray()
    write_varint(buf, len(values))
    bitmap = _pack_bits(present)
    write_varint(buf, len(bitmap))
    buf.extend(bitmap)
    if use_dict:
        buf.append(_DICT)
        ordered = sorted(distinct)
        index = {s: i for i, s in enumerate(ordered)}
        write_varint(buf, len(ordered))
        for s in ordered:
            encoded = s.encode("utf-8")
            write_varint(buf, len(encoded))
            buf.extend(encoded)
        for s in strings:
            write_varint(buf, index[s])
    else:
        buf.append(_DIRECT)
        for s in strings:
            encoded = s.encode("utf-8")
            write_varint(buf, len(encoded))
            buf.extend(encoded)
    return zlib.compress(bytes(buf))


def decode_string_column(data):
    raw = zlib.decompress(data)
    pos = 0
    count, pos = read_varint(raw, pos)
    bitmap_len, pos = read_varint(raw, pos)
    present = _unpack_bits(raw[pos:pos + bitmap_len], count)
    pos += bitmap_len
    mode = raw[pos]
    pos += 1
    strings = []
    n_present = sum(present)
    if mode == _DICT:
        dict_size, pos = read_varint(raw, pos)
        dictionary = []
        for _ in range(dict_size):
            length, pos = read_varint(raw, pos)
            dictionary.append(raw[pos:pos + length].decode("utf-8"))
            pos += length
        for _ in range(n_present):
            idx, pos = read_varint(raw, pos)
            strings.append(dictionary[idx])
    elif mode == _DIRECT:
        for _ in range(n_present):
            length, pos = read_varint(raw, pos)
            strings.append(raw[pos:pos + length].decode("utf-8"))
            pos += length
    else:
        raise OrcError("unknown string encoding mode %d" % mode)
    out = []
    it = iter(strings)
    for flag in present:
        out.append(next(it) if flag else None)
    return out


# ----------------------------------------------------------------------
# Boolean column.
# ----------------------------------------------------------------------
def encode_boolean_column(values):
    present = [v is not None for v in values]
    bools = [bool(v) for v in values if v is not None]
    buf = bytearray()
    write_varint(buf, len(values))
    bitmap = _pack_bits(present)
    write_varint(buf, len(bitmap))
    buf.extend(bitmap)
    packed = _pack_bits(bools)
    write_varint(buf, len(packed))
    buf.extend(packed)
    return zlib.compress(bytes(buf))


def decode_boolean_column(data):
    raw = zlib.decompress(data)
    pos = 0
    count, pos = read_varint(raw, pos)
    bitmap_len, pos = read_varint(raw, pos)
    present = _unpack_bits(raw[pos:pos + bitmap_len], count)
    pos += bitmap_len
    packed_len, pos = read_varint(raw, pos)
    n_present = sum(present)
    bools = _unpack_bits(raw[pos:pos + packed_len], n_present)
    out = []
    it = iter(bools)
    for flag in present:
        out.append(next(it) if flag else None)
    return out


ENCODERS = {
    "int": encode_int_column,
    "double": encode_double_column,
    "string": encode_string_column,
    "boolean": encode_boolean_column,
}

DECODERS = {
    "int": decode_int_column,
    "double": decode_double_column,
    "string": decode_string_column,
    "boolean": decode_boolean_column,
}
