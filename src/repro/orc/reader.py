"""ORC-like file reader: projection, stripe pruning, row numbers.

The reader exposes the three ORC properties DualTable relies on:

* **column projection** — only the byte streams of requested columns are
  decoded *and charged* to the cluster ledger;
* **stripe pruning** — a caller-supplied predicate over per-stripe column
  statistics skips whole stripes without touching their bytes;
* **row numbers** — every row comes back with its ordinal position in the
  file, which costs nothing to store and is the second half of the
  DualTable record ID.

When the backing filesystem belongs to a cluster with an
``orc_cache`` (see :mod:`repro.parallel.cache`), parsed footers and
decoded stripe columns are memoized under a content-derived key
``(path, file_len, crc32(bytes))``.  A hit skips the *real* CPU work
(JSON parse, stream decode) but charges exactly the bytes a miss
charges, so simulated time never depends on cache state; the
content-exact key means a rewritten or corrupted file can never
produce a stale hit (strict invalidation hooks in the handler are
belt-and-braces on top).
"""

import json
import struct
import zlib

from repro.common.errors import CorruptOrcFileError
from repro.orc.encodings import DECODERS
from repro.orc.writer import MAGIC


class StripeInfo:
    """Directory entry for one stripe (offsets, row count, stats)."""

    __slots__ = ("index", "offset", "length", "num_rows", "columns",
                 "first_row")

    def __init__(self, index, raw, first_row):
        self.index = index
        self.offset = raw["offset"]
        self.length = raw["length"]
        self.num_rows = raw["num_rows"]
        self.columns = raw["columns"]
        self.first_row = first_row

    def stats(self, column_index):
        return self.columns[column_index]["stats"]


class OrcReader:
    """Reads an ORC-like file previously produced by :class:`OrcWriter`.

    ``source`` may be raw bytes, or a ``(filesystem, path)`` pair in which
    case partial reads are charged to the filesystem's cluster ledger.
    """

    def __init__(self, source, path=None):
        if path is not None:
            self._fs = source
            self._path = path
            self._data = source.read_file_silent(path)
            self._cache = getattr(source.cluster, "orc_cache", None)
        else:
            self._fs = None
            self._path = None
            self._data = source
            self._cache = None
        if self._cache is not None and self._cache.budget_bytes > 0:
            self._cache_key = (self._path, len(self._data),
                               zlib.crc32(self._data))
        else:
            self._cache = None
            self._cache_key = None
        self._parse_footer()

    def _parse_footer(self):
        data = self._data
        tail = len(MAGIC) + 8
        if len(data) < tail or data[-len(MAGIC):] != MAGIC:
            raise CorruptOrcFileError("bad magic in %r" % (self._path,))
        (footer_len,) = struct.unpack("<Q", data[-tail:-len(MAGIC)])
        footer_start = len(data) - tail - footer_len
        if footer_start < 0:
            raise CorruptOrcFileError("footer overruns file")
        self._footer_bytes = footer_len + tail
        key = self._cache_key + ("footer",) if self._cache_key else None
        cached = self._cache.get(key) if key is not None else None
        if cached is not None:
            # The parsed footer is immutable after construction, so the
            # cached objects are shared; the charge is identical to the
            # miss path's (same bytes, same rates).
            (self.schema, self.num_rows, self.metadata, self.column_stats,
             self._column_index, self.stripes) = cached
            self._charge(self._footer_bytes)
            return
        try:
            footer = json.loads(data[footer_start:footer_start + footer_len])
        except ValueError as exc:
            raise CorruptOrcFileError("unparseable footer: %s" % exc) from exc
        self.schema = [tuple(col) for col in footer["schema"]]
        self.num_rows = footer["num_rows"]
        self.metadata = footer["metadata"]
        self.column_stats = footer["column_stats"]
        self._column_index = {name: i for i, (name, _) in enumerate(self.schema)}
        self.stripes = []
        first_row = 0
        for i, raw in enumerate(footer["stripes"]):
            stripe = StripeInfo(i, raw, first_row)
            first_row += stripe.num_rows
            self.stripes.append(stripe)
        self._charge(self._footer_bytes)
        if key is not None:
            self._cache.put(
                key,
                (self.schema, self.num_rows, self.metadata,
                 self.column_stats, self._column_index, self.stripes),
                nbytes=self._footer_bytes)

    def _charge(self, nbytes):
        if self._fs is not None and nbytes:
            self._fs.charge_read(nbytes)

    def column_index(self, name):
        try:
            return self._column_index[name]
        except KeyError:
            raise CorruptOrcFileError(
                "no column %r in %r" % (name, [n for n, _ in self.schema])
            ) from None

    # ------------------------------------------------------------------
    # Row iteration.
    # ------------------------------------------------------------------
    def rows(self, projection=None, stripe_filter=None):
        """Yield ``(row_number, values_tuple)`` pairs.

        ``projection`` is a list of column names; the returned tuples hold
        those columns in that order (all columns in schema order when
        omitted).  ``stripe_filter`` is called with each
        :class:`StripeInfo` and may return False to skip the stripe.
        """
        if projection is None:
            indices = list(range(len(self.schema)))
        else:
            indices = [self.column_index(name) for name in projection]
        for stripe in self.stripes:
            if stripe_filter is not None and not stripe_filter(stripe):
                continue
            columns = self._decode_stripe_columns(stripe, indices)
            for offset in range(stripe.num_rows):
                yield (stripe.first_row + offset,
                       tuple(col[offset] for col in columns))

    def read_all(self, projection=None, stripe_filter=None):
        """Materialize :meth:`rows` into a list."""
        return list(self.rows(projection=projection, stripe_filter=stripe_filter))

    def batches(self, projection=None, stripe_filter=None, batch_rows=None):
        """Yield :class:`~repro.vector.ColumnBatch` per stripe.

        The columnar sibling of :meth:`rows`: identical projection,
        pruning and byte charges (both funnel through
        :meth:`_decode_stripe_columns`), but the decoded column lists
        are handed out directly instead of being transposed into row
        tuples.  A whole stripe that fits in ``batch_rows`` is
        zero-copy — its batch shares the (possibly cached) column
        lists, so callers must not mutate them.  ``row_base`` carries
        each batch's first ordinal row number, replacing the per-row
        numbers of :meth:`rows`.
        """
        from repro.vector import ColumnBatch

        if projection is None:
            indices = list(range(len(self.schema)))
        else:
            indices = [self.column_index(name) for name in projection]
        for stripe in self.stripes:
            if stripe_filter is not None and not stripe_filter(stripe):
                continue
            columns = self._decode_stripe_columns(stripe, indices)
            nrows = stripe.num_rows
            if batch_rows is None or nrows <= batch_rows:
                yield ColumnBatch(columns, nrows,
                                  row_base=stripe.first_row)
            else:
                for start in range(0, nrows, batch_rows):
                    stop = min(start + batch_rows, nrows)
                    yield ColumnBatch([col[start:stop] for col in columns],
                                      stop - start,
                                      row_base=stripe.first_row + start)

    def _decode_stripe_columns(self, stripe, indices):
        out = []
        for idx in indices:
            meta = stripe.columns[idx]
            start, length = meta["offset"], meta["length"]
            self._charge(length)
            key = (self._cache_key + ("stripe", stripe.index, idx)
                   if self._cache_key else None)
            column = self._cache.get(key) if key is not None else None
            if column is None:
                stream = self._data[start:start + length]
                kind = self.schema[idx][1]
                column = DECODERS[kind](stream)
                if key is not None:
                    self._cache.put(key, column, nbytes=length)
            out.append(column)
        return out

    # ------------------------------------------------------------------
    # Size accounting helpers (used by cost estimation).
    # ------------------------------------------------------------------
    def projected_bytes(self, projection=None, stripe_filter=None):
        """Bytes that :meth:`rows` would charge for this access pattern."""
        if projection is None:
            indices = list(range(len(self.schema)))
        else:
            indices = [self.column_index(name) for name in projection]
        total = 0
        for stripe in self.stripes:
            if stripe_filter is not None and not stripe_filter(stripe):
                continue
            total += sum(stripe.columns[i]["length"] for i in indices)
        return total

    @property
    def file_bytes(self):
        return len(self._data)
