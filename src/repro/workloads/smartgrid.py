"""State Grid workload: schemas, generators and the paper's statements.

Reproduces the two production datasets of Section VI-A:

* **Table II** — six tables behind the read queries (Figure 4) and the
  36-day update/delete ratio experiments (Figures 5–10);
* **Table III** — six tables behind the eight representative DML
  statements U#1–U#4 / D#1–D#4 (Table IV), each with its paper-reported
  modification ratio (0.01 %–5 %).

The real tables hold 2.5–382 M rows and 50+ columns of proprietary meter
data; we generate deterministic synthetic rows at a configurable fraction
of the paper's row counts, keep the experiment-relevant columns from the
paper's schema excerpts, and pad with filler columns so rows are "wide"
(the INSERT OVERWRITE penalty the paper highlights).  Value distributions
are constructed so every statement's selectivity matches the paper's
reported ratio.
"""

from repro.common.rng import make_rng

#: the 36 days of roughly uniformly distributed data (Section VI-A).
GRID_DAYS = ["2013-07-%02d" % d for d in range(1, 32)] \
    + ["2013-08-%02d" % d for d in range(1, 6)]

_FILLER_COUNT = 8

PAPER_ROW_COUNTS = {
    # Table II
    "yh_gbjld": 7_112_576,
    "zd_gbcld": 7_963_648,
    "zc_zdzc": 74_104_736,
    "rw_gbrw": 34_045_664,
    "tj_gbsjwzl_mx": 239_032_928,
    "tj_dzdyh": 9_805_312,
    # Table III
    "tj_tdjl": 58_494_976,
    "tj_td": 33_036_288,
    "tj_sjwzl_r": 73_569_360,
    "tj_dysjwzl_mx": 382_890_014,
    "tj_sjwzl_y": 2_586_120,
    "tj_gk": 30_655_920,
}


def _filler_columns():
    return [("f%02d" % i, "string") for i in range(_FILLER_COUNT)]


def _filler_values(rng, row_index):
    return tuple("fill-%d-%d" % (row_index % 97, i)
                 for i in range(_FILLER_COUNT))


SCHEMAS = {
    # -- Table II -------------------------------------------------------
    "yh_gbjld": [("dwdm", "string"), ("gddy", "string"), ("hh", "int"),
                 ("sfyzx", "int"), ("cldjh", "int")] + _filler_columns(),
    "zd_gbcld": [("cldjh", "int"), ("zdjh", "int"),
                 ("dwdm", "string")] + _filler_columns(),
    "zc_zdzc": [("dwdm", "string"), ("zdjh", "int"), ("zzcjbm", "string"),
                ("cjfs", "int"), ("zdlx", "string")] + _filler_columns(),
    "rw_gbrw": [("xfsj", "date"), ("rwsx", "string"),
                ("cldh", "int")] + _filler_columns(),
    "tj_gbsjwzl_mx": [("yhlx", "string"), ("rq", "date"),
                      ("dwdm", "string"), ("cjbm", "string"),
                      ("val", "double")] + _filler_columns(),
    "tj_dzdyh": [("zdjh", "int")] + _filler_columns(),
    # -- Table III ------------------------------------------------------
    "tj_tdjl": [("tdsj", "string"), ("qym", "string"),
                ("zdjh", "int")] + _filler_columns(),
    "tj_td": [("hfsj", "string"), ("tdsj", "string")] + _filler_columns(),
    "tj_sjwzl_r": [("rq", "date"), ("rcjl", "double"),
                   ("yhlx", "string")] + _filler_columns(),
    "tj_dysjwzl_mx": [("rq", "date"), ("sfld", "int"), ("cjfs", "int"),
                      ("yhlx", "string")] + _filler_columns(),
    "tj_sjwzl_y": [("rq", "date"), ("val", "double")] + _filler_columns(),
    "tj_gk": [("rq", "date"), ("dwdm", "string"),
              ("bz", "int")] + _filler_columns(),
}

ORG_CODES = ["org%02d" % i for i in range(20)]       # 20 orgs → 5 % each
VOLTAGES = ["220V", "380V", "10kV"]
USER_TYPES = ["type%d" % i for i in range(10)]       # 10 → 10 % each
OUTAGE_TIMES = ["2013-07-%02d 0%d:00:00" % (1 + i // 5, i % 5)
                for i in range(50)]                  # 50 → 2 % each
#: 25 consecutive months × 30 days = 750 uniform dates (one month = 4 %).
MONTH_DAYS = ["%04d-%02d-%02d" % (2012 + (i // 30) // 12,
                                  1 + (i // 30) % 12, 1 + i % 30)
              for i in range(750)]


def create_table_sql(table, storage, properties=None):
    cols = ", ".join("%s %s" % (n, t) for n, t in SCHEMAS[table])
    sql = "CREATE TABLE %s (%s) STORED AS %s" % (table, cols, storage)
    if properties:
        props = ", ".join("'%s' = '%s'" % (k, v)
                          for k, v in sorted(properties.items()))
        sql += " TBLPROPERTIES (%s)" % props
    return sql


def scaled_rows(table, scale):
    """Rows to generate for ``table`` at ``scale`` of the paper's size."""
    return max(200, int(PAPER_ROW_COUNTS[table] * scale))


# ----------------------------------------------------------------------
# Table II generators (Figure 4 / Figures 5–10).
# ----------------------------------------------------------------------
def generate_yh_gbjld(n, seed=7):
    rng = make_rng("yh_gbjld", seed)
    rows = []
    for i in range(n):
        rows.append((rng.choice(ORG_CODES), rng.choice(VOLTAGES), i,
                     1 if rng.random() < 0.05 else 0, i)
                    + _filler_values(rng, i))
    return rows


def generate_zd_gbcld(n, seed=7):
    rng = make_rng("zd_gbcld", seed)
    return [(i, i, rng.choice(ORG_CODES)) + _filler_values(rng, i)
            for i in range(n)]


def generate_zc_zdzc(n, seed=7):
    rng = make_rng("zc_zdzc", seed)
    rows = []
    for i in range(n):
        rows.append((rng.choice(ORG_CODES), i, "mfr%02d" % (i % 17),
                     i % 4, "lx%d" % (i % 6)) + _filler_values(rng, i))
    return rows


def generate_rw_gbrw(n, seed=7):
    rng = make_rng("rw_gbrw", seed)
    return [(rng.choice(GRID_DAYS), "sx%d" % (i % 9), i % 5000)
            + _filler_values(rng, i) for i in range(n)]


def generate_tj_gbsjwzl_mx(n, seed=7):
    """The big measurement table: 36 days, *sorted by date*.

    Sorting matches how the collection system appends day after day, and
    is what lets ORC stripe statistics prune date-targeted updates — the
    effect behind Figures 5–10.
    """
    rng = make_rng("tj_gbsjwzl_mx", seed)
    per_day = n // len(GRID_DAYS)
    rows = []
    i = 0
    for day in GRID_DAYS:
        for _ in range(per_day):
            rows.append((rng.choice(USER_TYPES), day,
                         rng.choice(ORG_CODES), "cj%02d" % (i % 13),
                         round(rng.uniform(0, 500), 3))
                        + _filler_values(rng, i))
            i += 1
    return rows


def generate_tj_dzdyh(n, seed=7):
    rng = make_rng("tj_dzdyh", seed)
    return [(i % 5000,) + _filler_values(rng, i) for i in range(n)]


# ----------------------------------------------------------------------
# Table III generators (Table IV statements).
# ----------------------------------------------------------------------
def generate_tj_tdjl(n, seed=7):
    """Outage log: tdsj ∈ 50 times (2 %), qym ∈ 20 codes (5 %),
    zdjh ∈ 200 terminals (0.5 %)."""
    rng = make_rng("tj_tdjl", seed)
    rows = []
    for i in range(n):
        rows.append((rng.choice(OUTAGE_TIMES), rng.choice(ORG_CODES),
                     rng.randrange(200)) + _filler_values(rng, i))
    return rows


def generate_tj_td(n, seed=7, error_ratio=0.05):
    """Outage records; ``error_ratio`` have recovery before start (U#2)."""
    rng = make_rng("tj_td", seed)
    rows = []
    for i in range(n):
        start = rng.choice(OUTAGE_TIMES)
        if rng.random() < error_ratio:
            recovery = "2013-06-01 00:00:00"   # before every start time
        else:
            recovery = "2013-09-01 0%d:00:00" % (i % 5)
        rows.append((recovery, start) + _filler_values(rng, i))
    return rows


def generate_tj_sjwzl_r(n, seed=7):
    """Daily sampling-rate stats: 100 days × 10 user types (U#3: 0.1 %)."""
    rng = make_rng("tj_sjwzl_r", seed)
    days = MONTH_DAYS[:100]
    rows = []
    for i in range(n):
        rows.append((rng.choice(days), round(rng.uniform(80, 100), 2),
                     rng.choice(USER_TYPES)) + _filler_values(rng, i))
    return rows


def generate_tj_dysjwzl_mx(n, seed=7):
    """Point-level integrity detail: 11 days × 3 types (U#4: 3 %)."""
    rng = make_rng("tj_dysjwzl_mx", seed)
    days = GRID_DAYS[:11]
    rows = []
    for i in range(n):
        rows.append((rng.choice(days), i % 2, i % 4,
                     rng.choice(USER_TYPES[:3])) + _filler_values(rng, i))
    return rows


def generate_tj_sjwzl_y(n, seed=7):
    """Monthly stats sorted by date over ~25 months (D#1: 4 %)."""
    rng = make_rng("tj_sjwzl_y", seed)
    days = sorted(rng.choices(MONTH_DAYS, k=n))
    return [(day, round(rng.uniform(0, 100), 2)) + _filler_values(rng, i)
            for i, day in enumerate(days)]


def generate_tj_gk(n, seed=7):
    """Overview table: dwdm ∈ 20 orgs, bz marker 60 % ones (D#3: 3 %)."""
    rng = make_rng("tj_gk", seed)
    rows = []
    for i in range(n):
        rows.append((rng.choice(MONTH_DAYS[:200]), rng.choice(ORG_CODES),
                     1 if rng.random() < 0.6 else 0)
                    + _filler_values(rng, i))
    return rows


GENERATORS = {
    "yh_gbjld": generate_yh_gbjld,
    "zd_gbcld": generate_zd_gbcld,
    "zc_zdzc": generate_zc_zdzc,
    "rw_gbrw": generate_rw_gbrw,
    "tj_gbsjwzl_mx": generate_tj_gbsjwzl_mx,
    "tj_dzdyh": generate_tj_dzdyh,
    "tj_tdjl": generate_tj_tdjl,
    "tj_td": generate_tj_td,
    "tj_sjwzl_r": generate_tj_sjwzl_r,
    "tj_dysjwzl_mx": generate_tj_dysjwzl_mx,
    "tj_sjwzl_y": generate_tj_sjwzl_y,
    "tj_gk": generate_tj_gk,
}


_ROW_CACHE = {}


def grid_rows_cached(table, n_rows, seed=7):
    """Memoized generator access (rows are immutable tuples, safe to share)."""
    key = (table, n_rows, seed)
    if key not in _ROW_CACHE:
        _ROW_CACHE[key] = GENERATORS[table](n_rows, seed=seed)
    return _ROW_CACHE[key]


def load_grid_table(session, table, n_rows, storage="orc", seed=7,
                    properties=None):
    """Create and load one grid table; returns the generated row count."""
    session.execute(create_table_sql(table, storage, properties))
    rows = grid_rows_cached(table, n_rows, seed=seed)
    session.load_rows(table, rows)
    return len(rows)


# ----------------------------------------------------------------------
# Figure 4 read statements.
# ----------------------------------------------------------------------
GRID_QUERY_1 = """
SELECT y.hh, y.dwdm, z.zdlx, c.cldjh
FROM yh_gbjld y
JOIN zd_gbcld c ON y.cldjh = c.cldjh
JOIN zc_zdzc z ON c.zdjh = z.zdjh
WHERE y.sfyzx = 0 AND y.gddy = '220V'
"""

GRID_QUERY_2 = "SELECT count(*) FROM tj_gbsjwzl_mx"


# ----------------------------------------------------------------------
# Figures 5–10: date-ratio update/delete statements over 36 days.
# ----------------------------------------------------------------------
def update_days_sql(n_days, table="tj_gbsjwzl_mx"):
    """UPDATE the data of the first ``n_days`` of 36 (ratio n/36)."""
    # Grid statements modify "less than 3 columns on average" (Sec. II-B);
    # the recollection update rewrites the manufacture code and the value.
    return ("UPDATE %s SET cjbm = 'recollected', val = val + 1 "
            "WHERE rq >= '%s' AND rq <= '%s'"
            % (table, GRID_DAYS[0], GRID_DAYS[n_days - 1]))


def delete_days_sql(n_days, table="tj_gbsjwzl_mx"):
    """DELETE the data of the first ``n_days`` of 36 (ratio n/36)."""
    return ("DELETE FROM %s WHERE rq >= '%s' AND rq <= '%s'"
            % (table, GRID_DAYS[0], GRID_DAYS[n_days - 1]))


FOLLOWING_SELECT_SQL = ("SELECT count(*), sum(val) FROM tj_gbsjwzl_mx")


# ----------------------------------------------------------------------
# Table IV: the eight representative DML statements with paper ratios.
# ----------------------------------------------------------------------
TABLE4_STATEMENTS = [
    {
        "id": "U#1",
        "kind": "update",
        "table": "tj_tdjl",
        "ratio": 0.02,
        "paper_hive_s": 159.81,
        "paper_dualtable_s": 51.39,
        "sql": ("UPDATE tj_tdjl SET qym = 'area-new' "
                "WHERE tdsj = '%s'" % OUTAGE_TIMES[0]),
        "semantics": "Set the area code of outage events at a given time.",
    },
    {
        "id": "U#2",
        "kind": "update",
        "table": "tj_td",
        "ratio": 0.05,
        "paper_hive_s": 104.90,
        "paper_dualtable_s": 60.81,
        "sql": ("UPDATE tj_td SET hfsj = '9999-12-31 00:00:00' "
                "WHERE hfsj < tdsj"),
        "semantics": "Flag outage records whose recovery precedes start.",
    },
    {
        "id": "U#3",
        "kind": "update",
        "table": "tj_sjwzl_r",
        "ratio": 0.001,
        "paper_hive_s": 389.19,
        "paper_dualtable_s": 47.52,
        "sql": ("UPDATE tj_sjwzl_r SET rcjl = 96 "
                "WHERE rq = '%s' AND yhlx = '%s'"
                % (MONTH_DAYS[10], USER_TYPES[3])),
        "semantics": "Set the sampling rate for one day and user type.",
    },
    {
        "id": "U#4",
        "kind": "update",
        "table": "tj_dysjwzl_mx",
        "ratio": 0.03,
        "paper_hive_s": 1577.87,
        "paper_dualtable_s": 161.73,
        "sql": ("UPDATE tj_dysjwzl_mx SET cjfs = 9 "
                "WHERE rq = '%s' AND yhlx = '%s'"
                % (GRID_DAYS[4], USER_TYPES[1])),
        "semantics": "Set the collection method for one day and user type.",
    },
    {
        "id": "D#1",
        "kind": "delete",
        "table": "tj_sjwzl_y",
        "ratio": 0.04,
        "paper_hive_s": 46.26,
        "paper_dualtable_s": 22.47,
        "sql": ("DELETE FROM tj_sjwzl_y "
                "WHERE rq >= '2012-03-01' AND rq <= '2012-03-30'"),
        "semantics": "Delete one month from the monthly stats table.",
    },
    {
        "id": "D#2",
        "kind": "delete",
        "table": "tj_tdjl",
        "ratio": 0.05,
        "paper_hive_s": 102.04,
        "paper_dualtable_s": 47.26,
        "sql": "DELETE FROM tj_tdjl WHERE qym = '%s'" % ORG_CODES[2],
        "semantics": "Delete outage records for one area code.",
    },
    {
        "id": "D#3",
        "kind": "delete",
        "table": "tj_gk",
        "ratio": 0.03,
        "paper_hive_s": 147.87,
        "paper_dualtable_s": 34.97,
        "sql": ("DELETE FROM tj_gk WHERE dwdm = '%s' AND bz = 1"
                % ORG_CODES[5]),
        "semantics": "Delete overview rows for one org with the marker set.",
    },
    {
        "id": "D#4",
        "kind": "delete",
        "table": "tj_tdjl",
        "ratio": 0.0001,
        "paper_hive_s": 140.94,
        "paper_dualtable_s": 29.47,
        "sql": ("DELETE FROM tj_tdjl WHERE zdjh = 42 AND tdsj = '%s'"
                % OUTAGE_TIMES[7]),
        "semantics": "Delete outage records for one terminal and time.",
    },
]
