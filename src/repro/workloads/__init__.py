"""Workload generators: TPC-H, the State Grid datasets, DML statistics."""

from repro.workloads import dml_stats, smartgrid, tpch

__all__ = ["dml_stats", "smartgrid", "tpch"]
