"""TPC-H workload: dbgen-style generators plus the paper's statements.

The paper's Section VI-B uses a 30 GB TPC-H data set: ``lineitem``
(0.18 G rows, 23 GB) and ``orders`` (45 M rows, 5 GB).  We generate the
same two tables deterministically at laptop scale; the bench harness sets
the cluster's ``byte_scale``/``op_scale`` to the downscale factor so
simulated run times land at paper magnitude.

Statements provided (Section VI-B):

* Query a = TPC-H Q1, Query b = TPC-H Q12, Query c = ``COUNT(*)`` on
  lineitem (Figure 11);
* DML-a (update 5 % of lineitem), DML-b (delete 2 % of lineitem),
  DML-c (join update of 16 % of orders)  (Figure 12);
* ratio-sweep update/delete statements (Figures 13–18).
"""

import datetime

from repro.common.rng import make_rng

PAPER_LINEITEM_ROWS = 180_000_000
PAPER_ORDERS_ROWS = 45_000_000

LINEITEM_COLUMNS = [
    ("l_orderkey", "int"),
    ("l_partkey", "int"),
    ("l_suppkey", "int"),
    ("l_linenumber", "int"),
    ("l_quantity", "double"),
    ("l_extendedprice", "double"),
    ("l_discount", "double"),
    ("l_tax", "double"),
    ("l_returnflag", "string"),
    ("l_linestatus", "string"),
    ("l_shipdate", "date"),
    ("l_commitdate", "date"),
    ("l_receiptdate", "date"),
    ("l_shipinstruct", "string"),
    ("l_shipmode", "string"),
    ("l_comment", "string"),
]

ORDERS_COLUMNS = [
    ("o_orderkey", "int"),
    ("o_custkey", "int"),
    ("o_orderstatus", "string"),
    ("o_totalprice", "double"),
    ("o_orderdate", "date"),
    ("o_orderpriority", "string"),
    ("o_clerk", "string"),
    ("o_shippriority", "int"),
    ("o_comment", "string"),
]

_SHIPMODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
_INSTRUCTS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
              "TAKE BACK RETURN"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
               "5-LOW"]
_STATUS = ["F", "O", "P"]

_EPOCH = datetime.date(1992, 1, 1)
_CUTOFF = datetime.date(1995, 6, 17)


def _date_str(days_since_epoch):
    return (_EPOCH + datetime.timedelta(days=days_since_epoch)).isoformat()


def generate_orders(num_orders, seed=42):
    """Deterministic orders rows (one per orderkey, 1..num_orders)."""
    rng = make_rng("tpch-orders", seed)
    rows = []
    for orderkey in range(1, num_orders + 1):
        order_day = rng.randrange(0, 2400)
        rows.append((
            orderkey,
            rng.randrange(1, max(2, num_orders // 10)),
            rng.choice(_STATUS),
            round(rng.uniform(900.0, 500000.0), 2),
            _date_str(order_day),
            rng.choice(_PRIORITIES),
            "Clerk#%09d" % rng.randrange(1, 1000),
            0,
            "order comment %d" % orderkey,
        ))
    return rows


def generate_lineitem(num_orders, seed=42, lines_per_order=4):
    """Deterministic lineitem rows (~``lines_per_order`` per order)."""
    rng = make_rng("tpch-lineitem", seed)
    rows = []
    for orderkey in range(1, num_orders + 1):
        order_day = rng.randrange(0, 2400)
        nlines = rng.randrange(1, 2 * lines_per_order)
        for lineno in range(1, nlines + 1):
            ship_day = order_day + rng.randrange(1, 122)
            commit_day = order_day + rng.randrange(30, 91)
            receipt_day = ship_day + rng.randrange(1, 31)
            receipt_date = _EPOCH + datetime.timedelta(days=receipt_day)
            if receipt_date <= _CUTOFF:
                returnflag = rng.choice(["R", "A"])
            else:
                returnflag = "N"
            quantity = float(rng.randrange(1, 51))
            extended = round(quantity * rng.uniform(900.0, 2000.0), 2)
            rows.append((
                orderkey,
                rng.randrange(1, 200_000),
                rng.randrange(1, 10_000),
                lineno,
                quantity,
                extended,
                round(rng.uniform(0.0, 0.1), 2),
                round(rng.uniform(0.0, 0.08), 2),
                returnflag,
                "F" if ship_day <= 2190 else "O",
                _date_str(ship_day),
                _date_str(commit_day),
                _date_str(receipt_day),
                rng.choice(_INSTRUCTS),
                rng.choice(_SHIPMODES),
                "line comment %d-%d" % (orderkey, lineno),
            ))
    return rows


# ----------------------------------------------------------------------
# DDL.
# ----------------------------------------------------------------------
def create_table_sql(table, storage, properties=None):
    columns = {"lineitem": LINEITEM_COLUMNS, "orders": ORDERS_COLUMNS}[table]
    cols = ", ".join("%s %s" % (n, t) for n, t in columns)
    sql = "CREATE TABLE %s (%s) STORED AS %s" % (table, cols, storage)
    if properties:
        props = ", ".join("'%s' = '%s'" % (k, v)
                          for k, v in sorted(properties.items()))
        sql += " TBLPROPERTIES (%s)" % props
    return sql


# ----------------------------------------------------------------------
# Read queries (Figure 11).
# ----------------------------------------------------------------------
QUERY_A_Q1 = """
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

QUERY_B_Q12 = """
SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT'
                  OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       sum(CASE WHEN o_orderpriority != '1-URGENT'
                 AND o_orderpriority != '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders o
JOIN lineitem l ON o.o_orderkey = l.l_orderkey
WHERE l.l_shipmode IN ('MAIL', 'SHIP')
  AND l.l_commitdate < l.l_receiptdate
  AND l.l_shipdate < l.l_commitdate
  AND l.l_receiptdate >= '1994-01-01'
  AND l.l_receiptdate < '1995-01-01'
GROUP BY l_shipmode
ORDER BY l_shipmode
"""

QUERY_C_COUNT = "SELECT count(*) FROM lineitem"


# ----------------------------------------------------------------------
# DML statements.
# ----------------------------------------------------------------------
def partkey_threshold(ratio, max_partkey=200_000):
    """l_partkey threshold selecting ~``ratio`` of lineitem uniformly.

    l_partkey is uniform and uncorrelated with row order, so predicates on
    it model the paper's "randomly update one field in X% of the records":
    every stripe overlaps, no pruning, selectivity ≈ ratio.
    """
    return max(1, int(round(ratio * max_partkey)))


def update_ratio_sql(ratio):
    """UPDATE touching ~ratio of lineitem rows, one field changed."""
    return ("UPDATE lineitem SET l_comment = 'updated' "
            "WHERE l_partkey <= %d" % partkey_threshold(ratio))


def delete_ratio_sql(ratio):
    """DELETE touching ~ratio of lineitem rows."""
    return ("DELETE FROM lineitem WHERE l_partkey <= %d"
            % partkey_threshold(ratio))


def dml_a_sql():
    """DML-a: update 5 % of lineitem (Figure 12)."""
    return update_ratio_sql(0.05)


def dml_b_sql():
    """DML-b: delete 2 % of lineitem (Figure 12)."""
    return delete_ratio_sql(0.02)


def dml_c_sql(num_orders):
    """DML-c: join lineitem and orders, update 16 % of orders.

    Orders whose lineitems shipped in the last ~16 % of the date range are
    marked; the subquery is the join side.
    """
    return ("UPDATE orders SET o_orderstatus = 'X' "
            "WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem "
            "WHERE l_orderkey <= %d)" % max(1, int(0.16 * num_orders)))


FULL_SCAN_SQL = ("SELECT count(*), sum(l_extendedprice) FROM lineitem")


_ROW_CACHE = {}


def tpch_rows_cached(table, num_orders, seed=42):
    """Memoized generator access (tuples are immutable, safe to share)."""
    key = (table, num_orders, seed)
    if key not in _ROW_CACHE:
        generator = {"lineitem": generate_lineitem,
                     "orders": generate_orders}[table]
        _ROW_CACHE[key] = generator(num_orders, seed=seed)
    return _ROW_CACHE[key]


def load_tpch(session, num_orders, storage="orc", seed=42,
              properties=None, tables=("lineitem", "orders")):
    """Create + load the TPC-H tables into a session. Returns row counts."""
    counts = {}
    for table in ("lineitem", "orders"):
        if table not in tables:
            continue
        session.execute(create_table_sql(table, storage, properties))
        rows = tpch_rows_cached(table, num_orders, seed=seed)
        session.load_rows(table, rows)
        counts[table] = len(rows)
    return counts
