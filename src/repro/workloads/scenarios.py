"""Scenario replayer: synthetic stored-procedure mixes from Table I.

The paper motivates DualTable with five production business scenarios
whose stored procedures contain 50-79 % DML (Table I), and with the hard
requirement that "the computing task must be finished from 1am to 7am".
This module turns Table I into runnable workloads: for each scenario it
synthesizes a statement stream with the *same DML mix* (scaled down by a
factor), so the end-to-end scenario run time of Hive vs DualTable can be
measured — the system-level consequence of everything in Figures 5-18.

Statements operate on the measurement table ``tj_gbsjwzl_mx`` plus a
small staging table for MERGE sources; all of them parse and run on every
storage backend.
"""

from repro.common.rng import make_rng
from repro.workloads.dml_stats import TABLE1_DATA
from repro.workloads.smartgrid import GRID_DAYS, ORG_CODES

STAGING_TABLE = "stg_recollect"

STAGING_DDL = ("CREATE TABLE %s (rq date, dwdm string, val double)"
               % STAGING_TABLE)


def staging_rows(n=40, seed=11):
    rng = make_rng("scenario-staging", seed)
    return [(rng.choice(GRID_DAYS), rng.choice(ORG_CODES),
             round(rng.uniform(0, 100), 2)) for i in range(n)]


def _update_sql(rng, step):
    day = rng.choice(GRID_DAYS)
    return ("UPDATE tj_gbsjwzl_mx SET cjbm = 'step%d' WHERE rq = '%s'"
            % (step, day))


def _delete_sql(rng, step):
    day = rng.choice(GRID_DAYS)
    org = rng.choice(ORG_CODES)
    return ("DELETE FROM tj_gbsjwzl_mx WHERE rq = '%s' AND dwdm = '%s'"
            % (day, org))


def _merge_sql(rng, step):
    return ("MERGE INTO tj_gbsjwzl_mx t USING %s s "
            "ON t.rq = s.rq AND t.dwdm = s.dwdm "
            "WHEN MATCHED THEN UPDATE SET val = s.val" % STAGING_TABLE)


def _select_sql(rng, step):
    lo = rng.randrange(len(GRID_DAYS) - 5)
    return ("SELECT dwdm, count(*) AS n, sum(val) AS total "
            "FROM tj_gbsjwzl_mx WHERE rq >= '%s' AND rq <= '%s' "
            "GROUP BY dwdm" % (GRID_DAYS[lo], GRID_DAYS[lo + 5]))


def build_scenario(scenario_id, statements_factor=0.1, seed=3):
    """Statement stream for one Table-I scenario.

    ``statements_factor`` scales the paper's statement counts (the real
    procedures run 12-174 statements; 0.1 keeps bench runs short while
    preserving the mix).  Returns a list of (kind, sql) pairs.
    """
    spec = next(s for s in TABLE1_DATA if s.scenario == scenario_id)
    rng = make_rng("scenario", scenario_id, seed)

    def scaled(count):
        return max(1, round(count * statements_factor))

    counts = {
        "update": scaled(spec.update),
        "delete": scaled(spec.delete),
        "merge": scaled(spec.merge) if spec.merge else 0,
        "select": scaled(spec.total - spec.dml_count),
    }
    makers = {"update": _update_sql, "delete": _delete_sql,
              "merge": _merge_sql, "select": _select_sql}
    pool = [kind for kind, n in counts.items() for _ in range(n)]
    rng.shuffle(pool)
    return [(kind, makers[kind](rng, step))
            for step, kind in enumerate(pool)]


ZIPF_TABLE = "zipf_updates"


def zipf_update_ddl(rows_per_file=1000, stripe_rows=250, table=ZIPF_TABLE):
    """DDL for the Zipf scenario's DualTable.

    ``dualtable.mode = edit`` forces the EDIT plan so every UPDATE and
    DELETE lands as attached deltas — the delta churn the scenario
    exists to generate.
    """
    return ("CREATE TABLE %s (k int, grp string, v int, w double) "
            "STORED AS dualtable TBLPROPERTIES ("
            "'dualtable.mode' = 'edit', 'orc.rows_per_file' = '%d', "
            "'orc.stripe_rows' = '%d')" % (table, rows_per_file, stripe_rows))


def zipf_update_rows(rows):
    """The scenario's base table content (pure function of ``rows``)."""
    return [(i, "g%d" % (i % 5), i % 7, i / 8.0) for i in range(rows)]


def build_zipf_update_scenario(rows=8000, updates=12, deletes=4, scans=4,
                               keys_per_stmt=40, skew=1.1,
                               dirty_fraction=0.25, seed=7,
                               table=ZIPF_TABLE, rows_per_file=None,
                               stripe_rows=None):
    """Seeded Zipf-skewed update-heavy workload (ROADMAP item 5).

    Models a YCSB-style skewed mutation stream: a *hot set* of
    ``dirty_fraction * rows`` keys receives all DML, each statement
    drawing ``keys_per_stmt`` keys with Zipf(``skew``) rank weights —
    rank 1 is hottest, the tail barely touched.  Hot ranks are mapped
    through a seeded permutation of the whole key space, so the dirty
    keys scatter across every master file (YCSB's "scrambled Zipfian"),
    which is the worst case for the UNION READ merge: most batches
    carry at least one delta.  Interleaved full scans then pay the
    merge — the workload ``scripts/bench_merge.py`` measures.

    Returns ``{"table", "ddl", "rows", "statements", "hot_keys",
    "config"}``; replay ``statements`` with :func:`run_scenario`.
    """
    rng = make_rng("scenario-zipf", rows, updates, deletes, scans,
                   keys_per_stmt, round(skew, 6), round(dirty_fraction, 6),
                   seed)
    hot = max(1, min(rows, round(rows * dirty_fraction)))
    spread = list(range(rows))
    rng.shuffle(spread)
    weights = [1.0 / (rank + 1) ** skew for rank in range(hot)]

    def draw_keys():
        ranks = rng.choices(range(hot), weights=weights, k=keys_per_stmt)
        return sorted({spread[rank] for rank in ranks})

    def update_sql(step):
        keys = draw_keys()
        return ("UPDATE %s SET v = %d WHERE k IN (%s)"
                % (table, 90 + step % 10,
                   ", ".join(str(k) for k in keys)))

    def delete_sql(step):
        keys = draw_keys()
        return ("DELETE FROM %s WHERE k IN (%s)"
                % (table, ", ".join(str(k) for k in keys)))

    def scan_sql(step):
        return "SELECT k, grp, v, w FROM %s" % table

    makers = {"update": update_sql, "delete": delete_sql, "scan": scan_sql}
    pool = (["update"] * updates + ["delete"] * deletes + ["scan"] * scans)
    rng.shuffle(pool)
    statements = [(kind, makers[kind](step))
                  for step, kind in enumerate(pool)]
    rows_per_file = rows_per_file or max(1000, rows // 16)
    stripe_rows = stripe_rows or max(250, rows_per_file // 4)
    return {"table": table,
            "ddl": zipf_update_ddl(rows_per_file=rows_per_file,
                                   stripe_rows=stripe_rows,
                                   table=table),
            "rows": zipf_update_rows(rows),
            "statements": statements,
            "hot_keys": hot,
            "config": {"rows": rows, "updates": updates,
                       "deletes": deletes, "scans": scans,
                       "keys_per_stmt": keys_per_stmt, "skew": skew,
                       "dirty_fraction": dirty_fraction, "seed": seed}}


def run_scenario(session, statements):
    """Execute a statement stream; returns (total_seconds, per_kind)."""
    per_kind = {}
    total = 0.0
    for kind, sql in statements:
        result = session.execute(sql)
        total += result.sim_seconds
        per_kind[kind] = per_kind.get(kind, 0.0) + result.sim_seconds
    return total, per_kind


def prepare_session(session):
    """Create + load the staging table used by the MERGE statements."""
    session.execute(STAGING_DDL)
    session.load_rows(STAGING_TABLE, staging_rows())
