"""Scenario replayer: synthetic stored-procedure mixes from Table I.

The paper motivates DualTable with five production business scenarios
whose stored procedures contain 50-79 % DML (Table I), and with the hard
requirement that "the computing task must be finished from 1am to 7am".
This module turns Table I into runnable workloads: for each scenario it
synthesizes a statement stream with the *same DML mix* (scaled down by a
factor), so the end-to-end scenario run time of Hive vs DualTable can be
measured — the system-level consequence of everything in Figures 5-18.

Statements operate on the measurement table ``tj_gbsjwzl_mx`` plus a
small staging table for MERGE sources; all of them parse and run on every
storage backend.
"""

from repro.common.rng import make_rng
from repro.workloads.dml_stats import TABLE1_DATA
from repro.workloads.smartgrid import GRID_DAYS, ORG_CODES

STAGING_TABLE = "stg_recollect"

STAGING_DDL = ("CREATE TABLE %s (rq date, dwdm string, val double)"
               % STAGING_TABLE)


def staging_rows(n=40, seed=11):
    rng = make_rng("scenario-staging", seed)
    return [(rng.choice(GRID_DAYS), rng.choice(ORG_CODES),
             round(rng.uniform(0, 100), 2)) for i in range(n)]


def _update_sql(rng, step):
    day = rng.choice(GRID_DAYS)
    return ("UPDATE tj_gbsjwzl_mx SET cjbm = 'step%d' WHERE rq = '%s'"
            % (step, day))


def _delete_sql(rng, step):
    day = rng.choice(GRID_DAYS)
    org = rng.choice(ORG_CODES)
    return ("DELETE FROM tj_gbsjwzl_mx WHERE rq = '%s' AND dwdm = '%s'"
            % (day, org))


def _merge_sql(rng, step):
    return ("MERGE INTO tj_gbsjwzl_mx t USING %s s "
            "ON t.rq = s.rq AND t.dwdm = s.dwdm "
            "WHEN MATCHED THEN UPDATE SET val = s.val" % STAGING_TABLE)


def _select_sql(rng, step):
    lo = rng.randrange(len(GRID_DAYS) - 5)
    return ("SELECT dwdm, count(*) AS n, sum(val) AS total "
            "FROM tj_gbsjwzl_mx WHERE rq >= '%s' AND rq <= '%s' "
            "GROUP BY dwdm" % (GRID_DAYS[lo], GRID_DAYS[lo + 5]))


def build_scenario(scenario_id, statements_factor=0.1, seed=3):
    """Statement stream for one Table-I scenario.

    ``statements_factor`` scales the paper's statement counts (the real
    procedures run 12-174 statements; 0.1 keeps bench runs short while
    preserving the mix).  Returns a list of (kind, sql) pairs.
    """
    spec = next(s for s in TABLE1_DATA if s.scenario == scenario_id)
    rng = make_rng("scenario", scenario_id, seed)

    def scaled(count):
        return max(1, round(count * statements_factor))

    counts = {
        "update": scaled(spec.update),
        "delete": scaled(spec.delete),
        "merge": scaled(spec.merge) if spec.merge else 0,
        "select": scaled(spec.total - spec.dml_count),
    }
    makers = {"update": _update_sql, "delete": _delete_sql,
              "merge": _merge_sql, "select": _select_sql}
    pool = [kind for kind, n in counts.items() for _ in range(n)]
    rng.shuffle(pool)
    return [(kind, makers[kind](rng, step))
            for step, kind in enumerate(pool)]


def run_scenario(session, statements):
    """Execute a statement stream; returns (total_seconds, per_kind)."""
    per_kind = {}
    total = 0.0
    for kind, sql in statements:
        result = session.execute(sql)
        total += result.sim_seconds
        per_kind[kind] = per_kind.get(kind, 0.0) + result.sim_seconds
    return total, per_kind


def prepare_session(session):
    """Create + load the staging table used by the MERGE statements."""
    session.execute(STAGING_DDL)
    session.load_rows(STAGING_TABLE, staging_rows())
