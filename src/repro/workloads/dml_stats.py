"""Table I: ratio of DML operations in the five grid business scenarios.

The paper's Table I is a static analysis of the stored-procedure code of
the five core Zhejiang Grid scenarios; the numbers below are the paper's
reported statement counts, and :func:`dml_ratio_table` recomputes the
"% DML" column from them (the reproduction of Table I).
"""

from dataclasses import dataclass

SCENARIO_NAMES = {
    1: "power line loss analysis",
    2: "electricity consumption statistics",
    3: "data integrity ratio analysis",
    4: "end point traffic statistics",
    5: "exception handling",
}


@dataclass(frozen=True)
class ScenarioDml:
    scenario: int
    total: int
    delete: int
    update: int
    merge: int

    @property
    def dml_count(self):
        return self.delete + self.update + self.merge

    @property
    def dml_percent(self):
        return round(100.0 * self.dml_count / self.total)

    @property
    def name(self):
        return SCENARIO_NAMES[self.scenario]


#: the paper's Table I raw statement counts.
TABLE1_DATA = [
    ScenarioDml(scenario=1, total=133, delete=15, update=52, merge=15),
    ScenarioDml(scenario=2, total=75, delete=25, update=20, merge=9),
    ScenarioDml(scenario=3, total=174, delete=27, update=97, merge=13),
    ScenarioDml(scenario=4, total=12, delete=3, update=3, merge=0),
    ScenarioDml(scenario=5, total=41, delete=3, update=23, merge=0),
]

#: "% DML" column as printed in the paper.
PAPER_DML_PERCENT = {1: 62, 2: 72, 3: 79, 4: 50, 5: 63}


def dml_ratio_table():
    """Recompute Table I rows: (scenario, total, delete, update, merge, %)."""
    return [(s.scenario, s.total, s.delete, s.update, s.merge,
             s.dml_percent) for s in TABLE1_DATA]


def minimum_dml_percent():
    """The paper's claim: DML is at least 50 % in every scenario."""
    return min(s.dml_percent for s in TABLE1_DATA)
