"""DualTable reproduction: a hybrid storage model for update optimization
in Hive (Hu et al., ICDE 2015), rebuilt on simulated HDFS/HBase/MapReduce
substrates.

Quickstart::

    from repro import HiveSession

    session = HiveSession()
    session.execute("CREATE TABLE t (id int, v string) STORED AS DUALTABLE")
    session.load_rows("t", [(i, "v%d" % i) for i in range(1000)])
    session.execute("UPDATE t SET v = 'changed' WHERE id < 10")
    result = session.execute("SELECT count(*) FROM t WHERE v = 'changed'")
    assert result.scalar() == 10
"""

from repro.cluster import Cluster, ClusterProfile
from repro.hive import HiveSession, QueryResult

__version__ = "1.0.0"

__all__ = ["Cluster", "ClusterProfile", "HiveSession", "QueryResult",
           "__version__"]
