"""Columnar batches for the vectorized execution engine.

A :class:`ColumnBatch` is the unit of work on the batch path: one Python
list per projected column plus a row count.  Readers produce batches
(ORC stripes decode straight into column lists, so a batch over a stripe
is zero-copy), expression closures evaluate whole columns at a time, and
operators that need row tuples (shuffle, joins) transpose at the edge.

Vectorization is a *wall-clock* optimization only: every simulated
charge, metric and result byte is identical to the row-at-a-time path
(see INTERNALS §8 for the determinism contract).

Batches that wrap cached ORC stripe columns share those lists with the
cache — treat every batch as immutable; filtering produces a new batch
via :meth:`ColumnBatch.take`.
"""

#: Default rows per batch; also the MaterializedSource split chunk size
#: (the two are deliberately one knob — see HiveSession.set_batch_rows).
DEFAULT_BATCH_ROWS = 20_000

#: Bounds for the session batch-size knob.  Below 64 rows the per-batch
#: Python overhead dominates and the engine degenerates to row-at-a-time
#: costs; above 1M rows a single batch can pin hundreds of MB of
#: intermediate columns.
MIN_BATCH_ROWS = 64
MAX_BATCH_ROWS = 1_048_576


def validate_batch_rows(batch_rows):
    """Validate and normalize the batch-size knob; returns an int."""
    try:
        value = int(batch_rows)
    except (TypeError, ValueError):
        raise ValueError("batch_rows must be an integer, got %r"
                         % (batch_rows,)) from None
    if not MIN_BATCH_ROWS <= value <= MAX_BATCH_ROWS:
        raise ValueError(
            "batch_rows must be between %d and %d, got %d"
            % (MIN_BATCH_ROWS, MAX_BATCH_ROWS, value))
    return value


class ColumnBatch:
    """A run of rows stored column-wise.

    ``columns``  — one list per projected column, all of length
                   ``length`` (zero-width batches carry row count only);
    ``row_base`` — ordinal of the first row within its source ORC file,
                   or None once provenance is lost (post-filter/merge).
    """

    __slots__ = ("columns", "length", "row_base")

    def __init__(self, columns, length, row_base=None):
        self.columns = columns
        self.length = length
        self.row_base = row_base

    def __len__(self):
        return self.length

    def rows(self):
        """Iterate row tuples (transposing at the batch boundary)."""
        if not self.columns:
            return iter([()] * self.length)
        return zip(*self.columns)

    def take(self, indices):
        """New batch holding only ``indices`` (in order); copies."""
        return ColumnBatch([[col[i] for i in indices]
                            for col in self.columns], len(indices))

    def drop_sorted(self, offsets):
        """New batch without the rows at sorted ``offsets``.

        One list copy per column, then C-level ``del`` per dropped row
        (highest offset first so earlier offsets stay valid), so the
        per-row cost beyond the copy scales with the number of
        *deletions* — the delta-merge accelerator's delete primitive.
        """
        reversed_offsets = offsets[::-1]
        columns = []
        for column in self.columns:
            out = list(column)
            for offset in reversed_offsets:
                del out[offset]
            columns.append(out)
        return ColumnBatch(columns, self.length - len(offsets))


def spliced(column, offsets, values, base=0):
    """A copy of ``column`` with ``values[i]`` written at
    ``offsets[i] - base`` — the sparse column-patch primitive."""
    out = list(column)
    for offset, value in zip(offsets, values):
        out[offset - base] = value
    return out


def batch_from_rows(rows, width):
    """One ColumnBatch from a list of row tuples."""
    if not rows:
        return ColumnBatch([[] for _ in range(width)], 0)
    if width == 0:
        return ColumnBatch([], len(rows))
    return ColumnBatch([list(col) for col in zip(*rows)], len(rows))


def batches_from_rows(rows, width, batch_rows=DEFAULT_BATCH_ROWS):
    """Chunk a row list into ColumnBatches of at most ``batch_rows``."""
    for start in range(0, len(rows), batch_rows):
        yield batch_from_rows(rows[start:start + batch_rows], width)
