"""Hive-ACID-style base+delta storage baseline (Section V-C comparator)."""

from repro.acid.handler import AcidHandler

__all__ = ["AcidHandler"]
