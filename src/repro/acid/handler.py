"""Hive-ACID-style base+delta storage (the paper's Section V-C comparator).

Hive's transactional tables keep unmodified data in a **base** and write
every transaction's changes into new **delta** files stored in the same
HDFS/ORC format.  Readers merge-sort the base with *all* delta files to
build the up-to-date view; because deltas are plain sequential tables,
every read scans every delta completely.  Updates write the *whole updated
record* into the delta even when one cell changed.

That is exactly the design the paper contrasts DualTable against:

* same storage format for base and deltas (no random-access reads),
* one delta per transaction (read cost grows with transaction count),
* always-EDIT behaviour (no runtime OVERWRITE/EDIT choice).

Minor compaction merges all deltas into one; major compaction folds them
into a new base.
"""

from repro.mapreduce import InputSplit, Job
from repro.orc import OrcReader, OrcWriter
from repro.hive.catalog import register_handler
from repro.hive.expressions import Env, compile_expr, is_true
from repro.hive.session import QueryResult
from repro.hive.storage.base import StorageHandler

_OP_UPDATE = "U"
_OP_DELETE = "D"


class AcidHandler(StorageHandler):
    """Base + delta tables with merge-on-read."""

    kind = "acid"
    supports_inplace_mutation = False

    def __init__(self, table, env):
        super().__init__(table, env)
        self.location = "/warehouse/%s" % table.name
        self.base_dir = self.location + "/base"
        props = table.properties
        self.rows_per_file = int(props.get("orc.rows_per_file", 50_000))
        self.stripe_rows = int(props.get("orc.stripe_rows", 5_000))
        self._next_delta = 0
        self._next_base_file = 0

    @property
    def fs(self):
        return self.env.fs

    def _delta_schema(self):
        # __rid (global row id), __op, then every table column.
        return ([("__rid", "int"), ("__op", "string")]
                + self.schema.orc_schema())

    # ------------------------------------------------------------------
    def create(self):
        self.fs.mkdirs(self.base_dir)

    def drop(self):
        if self.fs.exists(self.location):
            self.fs.delete(self.location, recursive=True)

    def base_files(self):
        if not self.fs.exists(self.base_dir):
            return []
        return [p for p in self.fs.list_files(self.base_dir)
                if p.endswith(".orc")]

    def delta_dirs(self):
        if not self.fs.exists(self.location):
            return []
        out = []
        for name in self.fs.listdir(self.location):
            if name.startswith("delta_"):
                out.append("%s/%s" % (self.location, name))
        return sorted(out, key=lambda p: int(p.rsplit("_", 1)[1]))

    def delta_files(self):
        files = []
        for directory in self.delta_dirs():
            files.extend(p for p in self.fs.list_files(directory)
                         if p.endswith(".orc"))
        return files

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------
    def insert_rows(self, rows, overwrite=False):
        rows = list(rows)
        if overwrite:
            self.drop()
            self.create()
            self._next_base_file = 0
            self._next_delta = 0
        self._write_base_files(rows)
        return len(rows)

    def _write_base_files(self, rows):
        orc_schema = self.schema.orc_schema()
        for start in range(0, max(len(rows), 1), self.rows_per_file):
            chunk = rows[start:start + self.rows_per_file]
            if not chunk and start > 0:
                break
            writer = OrcWriter(orc_schema, stripe_rows=self.stripe_rows,
                               metadata={"acid.base_file":
                                         self._next_base_file})
            writer.write_rows(chunk)
            path = "%s/base-%05d.orc" % (self.base_dir,
                                         self._next_base_file)
            self.fs.write_file(path, writer.finish())
            self._next_base_file += 1

    def _write_delta(self, records):
        """Write one transaction's delta table: [(rid, op, row), ...]."""
        directory = "%s/delta_%06d" % (self.location, self._next_delta)
        self._next_delta += 1
        self.fs.mkdirs(directory)
        writer = OrcWriter(self._delta_schema(),
                           stripe_rows=self.stripe_rows)
        null_row = (None,) * len(self.schema)
        for rid, op, row in records:
            writer.write_row((rid, op) + (row if row is not None
                                          else null_row))
        self.fs.write_file(directory + "/delta.orc", writer.finish())
        return directory

    # ------------------------------------------------------------------
    # Reads: merge base with every delta.
    # ------------------------------------------------------------------
    def _base_rid_ranges(self):
        """Global row-id offset of each base file."""
        offsets = {}
        rid = 0
        for path in self.base_files():
            reader = OrcReader(self.fs, path)
            offsets[path] = rid
            rid += reader.num_rows
        return offsets

    def _read_all_deltas(self, ctx=None):
        """Scan every delta fully; returns {rid: (op, row_or_None)}."""
        merged = {}
        for path in self.delta_files():
            reader = OrcReader(self.fs, path)
            for _, values in reader.rows():
                rid, op = values[0], values[1]
                row = None if op == _OP_DELETE else tuple(values[2:])
                merged[rid] = (op, row)     # later deltas win
        return merged

    def scan_splits(self, projection=None, ranges=None):
        offsets = self._base_rid_ranges()
        prune_safe = not self.delta_files()
        splits = []
        for path in self.base_files():
            reader = OrcReader(self.fs, path)
            splits.append(InputSplit(
                payload={"path": path, "rid_offset": offsets[path],
                         "projection": list(projection) if projection else None,
                         "ranges": (ranges or {}) if prune_safe else {}},
                size_bytes=reader.projected_bytes(
                    list(projection) if projection else None),
                label=path))
        return splits

    def read_split(self, split, ctx):
        for _, values in self.read_split_with_rids(split, ctx):
            yield values

    def read_split_with_rids(self, split, ctx):
        from repro.hive.pushdown import make_stripe_filter

        payload = split.payload
        reader = OrcReader(self.fs, payload["path"])
        stripe_filter = make_stripe_filter(
            [n for n, _ in reader.schema], payload["ranges"] or {})
        projection = payload["projection"]
        deltas = self._read_all_deltas(ctx)     # every delta, every split
        if projection is None:
            indices = list(range(len(self.schema)))
        else:
            indices = [self.schema.index_of(n) for n in projection]
        offset = payload["rid_offset"]
        for row_no, values in reader.rows(projection=projection,
                                          stripe_filter=stripe_filter):
            rid = offset + row_no
            delta = deltas.get(rid)
            if delta is None:
                yield rid, values
                continue
            op, full_row = delta
            if op == _OP_DELETE:
                continue
            yield rid, tuple(full_row[i] for i in indices)

    # ------------------------------------------------------------------
    # Statistics.
    # ------------------------------------------------------------------
    def data_bytes(self):
        total = sum(self.fs.file_size(p) for p in self.base_files())
        total += sum(self.fs.file_size(p) for p in self.delta_files())
        return total

    def row_count(self):
        return sum(OrcReader(self.fs, p).num_rows
                   for p in self.base_files())

    # ------------------------------------------------------------------
    # UPDATE / DELETE: always write a new delta (no cost model).
    # ------------------------------------------------------------------
    def execute_update(self, session, stmt):
        schema = self.schema
        env = Env()
        env.add_schema(schema.names, alias=stmt.alias)
        predicate = (compile_expr(stmt.where, env)
                     if stmt.where is not None else None)
        assigns = [(schema.index_of(name), compile_expr(expr, env))
                   for name, expr in stmt.assignments]
        # The whole updated record goes into the delta, so the scan must
        # read every column of matching rows.
        splits = self.scan_splits(projection=None,
                                  ranges=(extract_ranges_safe(stmt.where)))

        def map_fn(split, ctx):
            for rid, values in self.read_split_with_rids(split, ctx):
                if predicate is None or is_true(predicate(values)):
                    ctx.incr("updated")
                    row = list(values)
                    for idx, fn in assigns:
                        row[idx] = fn(values)
                    yield (rid, _OP_UPDATE, tuple(row))

        job = Job(name="acid-update", splits=splits, map_fn=map_fn,
                  reduce_fn=None)
        result = session.runner.run(job)
        write_seconds = session._charged_parallel(
            lambda: self._write_delta(result.outputs))
        return QueryResult(
            sim_seconds=result.sim_seconds + write_seconds,
            jobs=[result], affected=result.counters.get("updated", 0),
            plan="acid-update-delta",
            detail={"plan": "delta", "delta_count": self._next_delta})

    def execute_delete(self, session, stmt):
        schema = self.schema
        env = Env()
        env.add_schema(schema.names, alias=stmt.alias)
        predicate = (compile_expr(stmt.where, env)
                     if stmt.where is not None else None)
        from repro.hive.expressions import referenced_columns
        needed = (referenced_columns(stmt.where)
                  if stmt.where is not None else set())
        projection = [c.name for c in schema if c.name.lower() in needed]
        if not projection:
            projection = [schema.columns[0].name]
        proj_env = Env()
        proj_env.add_schema(projection, alias=stmt.alias)
        proj_predicate = (compile_expr(stmt.where, proj_env)
                          if stmt.where is not None else None)
        splits = self.scan_splits(projection=projection,
                                  ranges=extract_ranges_safe(stmt.where))

        def map_fn(split, ctx):
            for rid, values in self.read_split_with_rids(split, ctx):
                if proj_predicate is None or is_true(proj_predicate(values)):
                    ctx.incr("deleted")
                    yield (rid, _OP_DELETE, None)

        job = Job(name="acid-delete", splits=splits, map_fn=map_fn,
                  reduce_fn=None)
        result = session.runner.run(job)
        write_seconds = session._charged_parallel(
            lambda: self._write_delta(result.outputs))
        return QueryResult(
            sim_seconds=result.sim_seconds + write_seconds,
            jobs=[result], affected=result.counters.get("deleted", 0),
            plan="acid-delete-delta",
            detail={"plan": "delta", "delta_count": self._next_delta})

    # ------------------------------------------------------------------
    # Compaction.
    # ------------------------------------------------------------------
    def execute_compact(self, session, major=True):
        if major:
            return self._major_compact(session)
        return self._minor_compact(session)

    def _minor_compact(self, session):
        """Merge all delta tables into a single delta (keeps the base)."""
        dirs = self.delta_dirs()
        if len(dirs) <= 1:
            return QueryResult(plan="acid-minor-noop")
        def merge():
            merged = self._read_all_deltas()
            for directory in dirs:
                self.fs.delete(directory, recursive=True)
            records = [(rid, op, row)
                       for rid, (op, row) in sorted(merged.items())]
            self._write_delta(records)
        seconds = session._charged_parallel(merge)
        return QueryResult(plan="acid-minor-compact", sim_seconds=seconds,
                           detail={"merged_deltas": len(dirs)})

    def _major_compact(self, session):
        """Fold all deltas into a new base."""
        if not self.delta_files():
            return QueryResult(plan="acid-major-noop")
        splits = self.scan_splits(projection=None)

        def map_fn(split, ctx):
            for _, values in self.read_split_with_rids(split, ctx):
                yield values

        job = Job(name="acid-major-compact", splits=splits, map_fn=map_fn,
                  reduce_fn=None)
        result = session.runner.run(job)

        def rewrite():
            for directory in self.delta_dirs():
                self.fs.delete(directory, recursive=True)
            self.fs.delete(self.base_dir, recursive=True)
            self.fs.mkdirs(self.base_dir)
            self._next_base_file = 0
            self._write_base_files([self.schema.coerce_row(r)
                                    for r in result.outputs])
        write_seconds = session._charged_parallel(rewrite)
        return QueryResult(plan="acid-major-compact",
                           sim_seconds=result.sim_seconds + write_seconds,
                           jobs=[result],
                           detail={"rows_written": len(result.outputs)})


def extract_ranges_safe(where):
    from repro.hive.pushdown import extract_ranges

    if where is None:
        return {}
    return extract_ranges(where)


register_handler("acid", AcidHandler)
