"""Statement transactions: snapshots, write sets, and the commit log.

The MVCC scheme is *deferred publication* layered on the PR-1 EditBatch
machinery:

* physical state always equals **committed** state — a statement's
  EDIT-plan deltas stay buffered in its :class:`StatementTxn` until the
  server commits it, so a statement dispatched at watermark *W* reads
  exactly the commits ``seq <= W`` (its snapshot) and nothing else;
* the :class:`CommitLog` is the versioned-catalog/delta-visibility
  watermark: one monotonically increasing sequence number per write
  commit, each carrying the committed write set (record IDs) and the
  tables it touched;
* at commit, first-committer-wins: any record in the log with
  ``seq > txn.snapshot_seq`` whose write set intersects the committing
  statement's — or any *exclusive* commit (a master-file rewrite:
  OVERWRITE-plan DML, INSERT, COMPACT, DDL) on a table the statement
  touched — aborts the statement with
  :class:`~repro.common.errors.TxnConflictError`; its buffered edits
  are simply dropped, so readers never observe a half-applied batch.

Exclusive statements commit at execution time (they mutate master files
in place); they are safe because execution is physically atomic and any
overlapping optimistic statement fails its commit-time check.
"""

import itertools

from repro.common.errors import TxnConflictError

#: statement lifecycle states (SHOW SESSIONS renders these).
EXECUTING = "executing"
COMMITTED = "committed"
ABORTED = "aborted"


class CommitRecord:
    """One committed write statement in the commit log."""

    __slots__ = ("seq", "session_id", "tables", "keys", "exclusive", "sql")

    def __init__(self, seq, session_id, tables, keys, exclusive, sql=""):
        self.seq = seq
        self.session_id = session_id
        self.tables = frozenset(tables)
        self.keys = frozenset(keys)
        self.exclusive = bool(exclusive)
        self.sql = sql

    def __repr__(self):
        return ("CommitRecord(seq=%d, session=%r, tables=%r, keys=%d, "
                "exclusive=%r)" % (self.seq, self.session_id,
                                   sorted(self.tables), len(self.keys),
                                   self.exclusive))


class CommitLog:
    """The global commit sequence: watermark + conflict detection."""

    def __init__(self):
        self._records = []

    @property
    def seq(self):
        """The current watermark (number of write commits so far)."""
        return len(self._records)

    def records_since(self, seq):
        return self._records[seq:]

    def append(self, session_id, tables, keys, exclusive, sql=""):
        record = CommitRecord(self.seq + 1, session_id, tables, keys,
                              exclusive, sql)
        self._records.append(record)
        return record

    def first_conflict(self, txn):
        """The earliest commit that invalidates ``txn``, or None.

        Write-write conflicts only (snapshot isolation): a read-only
        statement never conflicts.  Exclusive commits conflict at table
        granularity — a rewrite invalidates every snapshot of the table
        because record IDs may have been remapped.
        """
        if not txn.write_keys and not txn.tables_written:
            return None
        for record in self._records[txn.snapshot_seq:]:
            if record.exclusive and (record.tables & txn.tables):
                return record
            if record.keys and not txn.write_keys.isdisjoint(record.keys):
                return record
        return None


class StatementTxn:
    """One statement's transaction: snapshot, buffers, write set."""

    _ids = itertools.count(1)

    def __init__(self, server, session, sql, snapshot_seq):
        self.id = next(StatementTxn._ids)
        self.server = server
        self.session = session
        self.sql = sql
        self.snapshot_seq = snapshot_seq
        self.state = EXECUTING
        self.exclusive = False
        #: set when the owning session is killed mid-statement: the
        #: completion event discards instead of committing.
        self.doomed = False
        #: tables the statement touched at all (guards the autocompact
        #: daemon and exclusive escalation).
        self.tables = set()
        #: tables the statement writes.
        self.tables_written = set()
        #: record IDs in the write set (union of deferred EditBatches).
        self.write_keys = set()
        #: deferred ``() -> commit_seconds`` publish closures, in the
        #: order the statement produced them.
        self._publishes = []
        self.result = None

    # -- hooks called from inside statement execution -------------------
    def touch(self, table, write=False):
        """Record that the statement accessed (or wrote) ``table``."""
        table = table.lower()
        self.tables.add(table)
        if write:
            self.tables_written.add(table)

    def defer_edit_batch(self, table, batch, session):
        """Buffer an EDIT-plan statement's commit until the server's
        commit point (called by the DualTable handler)."""
        self.touch(table, write=True)
        self.write_keys |= batch.write_keys()
        self._publishes.append(lambda: batch.commit(session))

    def require_exclusive(self, table):
        """Escalate to table-exclusive execution, or abort.

        OVERWRITE-plan rewrites mutate master files in place, which is
        only safe when no other statement is in flight on the table; if
        one is, raise the escalation variant of
        :class:`TxnConflictError` — the server retries the statement as
        an upfront-exclusive one once the table drains.
        """
        table = table.lower()
        self.touch(table, write=True)
        if self.exclusive:
            return
        if self.server is not None \
                and self.server.table_busy(table, exclude=self):
            raise TxnConflictError(
                "statement needs exclusive access to %r while other "
                "statements are in flight on it" % table,
                escalation=True)
        self.exclusive = True

    # -- commit-side API ------------------------------------------------
    def has_writes(self):
        return self.exclusive or bool(self.write_keys) \
            or bool(self.tables_written)

    def publish(self):
        """Run the deferred EditBatch commits; returns charged seconds.

        Idempotent at the closure level: :meth:`EditBatch.commit` stages
        a checksummed redo log before publishing, so a crash mid-publish
        is resolved by the handler's ``recover()`` exactly as in the
        serial engine.
        """
        seconds = 0.0
        for publish in self._publishes:
            seconds += publish()
        return seconds

    def discard(self):
        """Drop buffered edits (abort / session kill): nothing was
        staged, so there is nothing durable to clean up."""
        self._publishes = []
        self.state = ABORTED

    def __repr__(self):
        return ("StatementTxn(id=%d, session=%r, snapshot=%d, state=%s, "
                "exclusive=%r, writes=%d)"
                % (self.id, getattr(self.session, "id", None),
                   self.snapshot_seq, self.state, self.exclusive,
                   len(self.write_keys)))
