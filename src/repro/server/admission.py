"""Bounded admission with deterministic per-tenant fair scheduling.

The server cannot queue unboundedly: past ``max_queue`` waiting
statements it *sheds* load with a typed
:class:`~repro.common.errors.ServerOverloaded` instead of letting queue
delay grow without bound (graceful degradation — the client sees a
retryable error immediately rather than a timeout much later).

Scheduling is per-tenant round-robin: each tenant has a FIFO queue and
the dispatcher advances a cursor over tenants in first-seen order, so a
tenant flooding the server cannot starve the others — it only lengthens
*its own* queue.  Everything is deterministic: same submissions, same
dispatch order.
"""

from collections import OrderedDict, deque


class AdmissionController:
    """Bounded multi-tenant FIFO with round-robin dispatch."""

    def __init__(self, max_queue=64, metrics=None):
        self.max_queue = int(max_queue)
        self.metrics = metrics
        self._queues = OrderedDict()    # tenant -> deque (first-seen order)
        self._cursor = 0
        self.admitted = 0
        self.shed = 0

    # ------------------------------------------------------------------
    @property
    def depth(self):
        return sum(len(q) for q in self._queues.values())

    def depth_for(self, tenant):
        queue = self._queues.get(tenant)
        return len(queue) if queue else 0

    def _note_depth(self):
        if self.metrics is not None:
            self.metrics.gauge("server.queue_depth", self.depth)

    # ------------------------------------------------------------------
    def submit(self, tenant, item):
        """Enqueue ``item`` for ``tenant``; False means *shed*."""
        if self.depth >= self.max_queue:
            self.shed += 1
            if self.metrics is not None:
                self.metrics.incr("server.shed")
                # Per-tenant shed trail: the workload advisor's
                # tenant-pressure finding reads these.
                self.metrics.incr("server.shed.%s" % tenant)
            return False
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        queue.append(item)
        self.admitted += 1
        if self.metrics is not None:
            self.metrics.incr("server.admitted")
        self._note_depth()
        return True

    def requeue_front(self, tenant, item):
        """Put a retrying statement back at the head of its tenant's
        queue (it keeps its place; the bound is not re-checked — the
        statement was already admitted once)."""
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        queue.appendleft(item)
        self._note_depth()

    def pop(self):
        """The next statement under round-robin, or None if idle.

        The cursor walks tenants in first-seen order and resumes *after*
        the tenant it last served, so service alternates fairly across
        every tenant with waiting work.
        """
        tenants = list(self._queues)
        if not tenants:
            return None
        n = len(tenants)
        for offset in range(n):
            tenant = tenants[(self._cursor + offset) % n]
            queue = self._queues[tenant]
            if queue:
                item = queue.popleft()
                self._cursor = (self._cursor + offset + 1) % n
                self._note_depth()
                return item
        return None

    def pending(self):
        """All queued items in dispatch-agnostic (tenant, item) order."""
        return [(tenant, item) for tenant, queue in self._queues.items()
                for item in queue]
