"""Seeded open-loop ledger workload: the server's determinism oracle.

The workload is a bank-ledger table of ``accounts`` rows whose updates
are *commutative* (``UPDATE ledger SET v = v + d WHERE id = k``), so the
final ``SUM(v)`` depends only on **which** statements committed — never
on the order they interleaved.  That gives two checkable bars:

* **zero lost writes**: ``final SUM(v) == initial SUM(v) + Σ delta`` over
  exactly the statements the server reported committed — under chaos,
  kills, conflicts and retries;
* **determinism across concurrency**: with shedding disabled (a large
  ``max_queue``) and no kills, every statement eventually commits, so
  concurrency 1, 4 and 16 runs of the same seed produce byte-identical
  ledger totals even though their interleavings differ.

``scripts/bench_server.py`` drives this at 1000 clients and gates CI on
both bars.
"""

from repro.common.rng import make_rng


def build_ledger_server(accounts=64, seed=0, concurrency=4,
                        max_queue=1_000_000, timeout_s=None,
                        rows_per_file=16, num_workers=3):
    """A server over a fresh DualTable ledger of ``accounts`` rows.

    ``max_queue`` defaults to effectively-unbounded because the
    determinism gate needs every statement to commit; overload tests
    pass a small bound explicitly.
    """
    from repro.cluster import ClusterProfile
    from repro.hive import HiveSession
    from repro.server.server import DualTableServer

    engine = HiveSession(profile=ClusterProfile.laptop(
        num_workers=num_workers))
    # mode=edit pins the plan the cost model would pick at production
    # scale for single-row updates; on a simulation-sized table the
    # OVERWRITE plan would win on raw cost and serialize everything
    # through exclusive escalation, hiding the optimistic path this
    # driver exists to stress.
    engine.execute(
        "CREATE TABLE ledger (id int, v int) STORED AS DUALTABLE "
        "TBLPROPERTIES ('orc.rows_per_file' = '%d', "
        "'orc.stripe_rows' = '8', 'dualtable.mode' = 'edit')"
        % rows_per_file)
    engine.load_rows("ledger", [(i, 0) for i in range(accounts)])
    return DualTableServer(engine, concurrency=concurrency,
                           max_queue=max_queue, timeout_s=timeout_s,
                           seed=seed)


def ledger_arrivals(server, clients=1000, statements=200, accounts=64,
                    seed=0, tenants=4, mean_gap_s=0.05,
                    read_fraction=0.2):
    """A seeded open-loop arrival schedule over ``clients`` sessions.

    Open-loop means arrival times are drawn up front (exponential gaps)
    and never react to completions — the clients keep sending even when
    the server is saturated, which is exactly the regime admission
    control exists for.  The schedule depends only on the seed, so every
    concurrency level replays the identical offered load.
    """
    from repro.server.server import Arrival

    rng = make_rng("server-ledger", seed, clients, statements, accounts)
    sessions = [server.connect(tenant="t%02d" % (i % tenants))
                for i in range(clients)]
    arrivals = []
    now = 0.0
    for _ in range(statements):
        now += rng.expovariate(1.0 / mean_gap_s)
        session = sessions[rng.randrange(clients)]
        if rng.random() < read_fraction:
            arrivals.append(Arrival(
                time=now, session=session,
                sql="SELECT SUM(v) FROM ledger",
                payload={"kind": "read"}))
        else:
            account = rng.randrange(accounts)
            delta = rng.randint(1, 9)
            arrivals.append(Arrival(
                time=now, session=session,
                sql="UPDATE ledger SET v = v + %d WHERE id = %d"
                    % (delta, account),
                payload={"kind": "update", "delta": delta,
                         "account": account}))
    return arrivals


def ledger_totals(engine):
    """``(SUM(v), COUNT(*))`` read straight from the engine (injection
    paused so verification cannot perturb a chaos schedule)."""
    with engine.cluster.faults.paused():
        row = engine.execute(
            "SELECT SUM(v), COUNT(*) FROM ledger").rows[0]
    return (row[0] or 0, row[1])


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def run_open_loop(server, arrivals, kills=(), concurrency=None):
    """Run a schedule and audit the ledger against the outcomes.

    Returns a summary dict; ``summary["lost_writes"]`` is the number of
    committed deltas missing from the final total (must be 0) and
    ``summary["phantom_writes"]`` counts the reverse direction (a total
    higher than the committed deltas explain — e.g. a statement the
    server reported aborted whose edits leaked).
    """
    initial_total, count = ledger_totals(server.engine)
    counters_before = dict(server.metrics.counters)
    outcomes = server.run(arrivals, kills=kills, concurrency=concurrency)
    final_total, final_count = ledger_totals(server.engine)

    committed_delta = sum(o["payload"].get("delta", 0) for o in outcomes
                          if o["status"] == "committed")
    expected_total = initial_total + committed_delta
    by_status = {}
    for outcome in outcomes:
        by_status[outcome["status"]] = by_status.get(outcome["status"], 0) + 1
    latencies = sorted(o["latency_s"] for o in outcomes
                       if o["status"] == "committed")
    counters = server.metrics.counters

    def delta(name):
        return counters.get(name, 0) - counters_before.get(name, 0)

    return {
        "statements": len(outcomes),
        "by_status": by_status,
        "initial_total": initial_total,
        "final_total": final_total,
        "expected_total": expected_total,
        "committed_delta": committed_delta,
        "lost_writes": max(0, expected_total - final_total),
        "phantom_writes": max(0, final_total - expected_total),
        "rows": final_count,
        "rows_changed": final_count - count,
        "conflicts": delta("server.conflicts"),
        "conflict_retries": delta("server.conflict_retries"),
        "escalations": delta("server.escalations"),
        "shed": delta("server.shed"),
        "timeouts": delta("server.timeouts"),
        "killed": delta("server.killed"),
        "commits": delta("server.commits"),
        "latency_p50_s": _percentile(latencies, 0.50),
        "latency_p95_s": _percentile(latencies, 0.95),
        "latency_max_s": latencies[-1] if latencies else 0.0,
    }
