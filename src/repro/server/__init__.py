"""repro.server: a concurrent multi-session front end for the warehouse.

The server turns the single-statement engine into a multi-tenant
service with three robustness layers (docs/INTERNALS.md §10):

* **Snapshot isolation** (:mod:`repro.server.txn`): every statement
  executes against the commit watermark taken when it is dispatched;
  EDIT-plan writes are buffered (the PR-1 EditBatch) and published only
  at commit, after a first-committer-wins conflict check over record-id
  write sets.  Conflicted statements retry under a seeded, jittered
  :class:`~repro.common.retry.RetryPolicy` and escalate to
  table-exclusive execution rather than livelock.

* **Admission control + fair scheduling**
  (:mod:`repro.server.admission`): a bounded queue with per-tenant
  deficit-free round-robin, per-statement timeouts, and typed
  :class:`~repro.common.errors.ServerOverloaded` load-shedding instead
  of unbounded queueing.

* **Deterministic concurrency** (:class:`DualTableServer.run`): an
  event-driven open-loop scheduler over simulated time — same seed,
  same arrivals, same commits at any concurrency — which is what makes
  the chaos harness's "byte-identical ledger totals at concurrency
  1/4/16" bar checkable at all.
"""

from repro.server.admission import AdmissionController
from repro.server.driver import (build_ledger_server, ledger_arrivals,
                                 ledger_totals, run_open_loop)
from repro.server.server import Arrival, DualTableServer, ServerSession
from repro.server.txn import CommitLog, CommitRecord, StatementTxn

__all__ = [
    "AdmissionController",
    "Arrival",
    "CommitLog",
    "CommitRecord",
    "DualTableServer",
    "ServerSession",
    "StatementTxn",
    "build_ledger_server",
    "ledger_arrivals",
    "ledger_totals",
    "run_open_loop",
]
