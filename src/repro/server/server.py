"""DualTableServer: concurrent sessions over one simulated warehouse.

The engine underneath (:class:`~repro.hive.session.HiveSession`) is a
single-threaded simulator, so the server models concurrency the same way
the cluster models I/O: **deterministic discrete events**.  Statements
arrive on an open-loop schedule, wait in the bounded admission queue,
occupy one of ``concurrency`` execution slots, and complete at
``dispatch_time + sim_seconds`` on the server's virtual clock.  Because
every state change happens at an event — and events are totally ordered
by ``(time, priority, seq)`` — the same seed produces the same commits
at any concurrency level.

Isolation (see :mod:`repro.server.txn`):

* *optimistic* statements (DualTable UPDATE/DELETE taking the EDIT plan)
  physically execute at dispatch against published == committed state,
  buffer their EditBatch, and publish at the completion event after a
  first-committer-wins conflict check; conflicts retry under a seeded,
  jittered :class:`~repro.common.retry.RetryPolicy` and escalate to
  exclusive execution after ``max_attempts`` (no livelock: an exclusive
  statement always commits);
* *exclusive* statements (INSERT, DDL, COMPACT, MERGE, OVERWRITE-plan
  DML, non-DualTable DML) mutate shared files in place, so they wait
  (parked, not queued) until no optimistic writer is in flight on their
  tables, then execute and commit in one event.

Overload never cascades: past ``max_queue`` waiting statements the
admission controller sheds with
:class:`~repro.common.errors.ServerOverloaded`, and statements whose
queue delay exceeds ``timeout_s`` are dropped with
:class:`~repro.common.errors.StatementTimeout` instead of occupying a
slot.
"""

import heapq
import itertools

from dataclasses import dataclass, field

from repro.common.errors import (ReproError, ServerError, ServerOverloaded,
                                 SessionKilledError, StatementTimeout,
                                 TxnConflictError)
from repro.common.retry import RetryPolicy
from repro.hive import ast_nodes as ast
from repro.hive.parser import parse
from repro.server.admission import AdmissionController
from repro.server.txn import ABORTED, COMMITTED, CommitLog, StatementTxn

#: event priorities: at equal times, completions commit before retries
#: and kills take effect before new arrivals are admitted.
_PRIO_COMPLETE = 0
_PRIO_RETRY = 1
_PRIO_KILL = 2
_PRIO_ARRIVAL = 3

#: statement classes that never write (no txn conflict possible).
_READ_ONLY = (ast.SelectStmt, ast.UnionAllStmt, ast.DescribeStmt,
              ast.ShowMetricsStmt, ast.ShowTablesStmt,
              ast.ShowPartitionsStmt, ast.ShowCompactionsStmt,
              ast.ShowSessionsStmt, ast.ShowServerStatsStmt,
              ast.ShowAdvisorStmt, ast.ShowShardsStmt, ast.SetOptionStmt)


def statement_tables(stmt):
    """Tables a statement may *write* (lower-cased), best effort."""
    tables = set()
    name = getattr(stmt, "table", None)
    if isinstance(name, str):
        tables.add(name.lower())
    target = getattr(stmt, "target", None)
    if isinstance(target, str):
        tables.add(target.lower())
    inner = getattr(stmt, "statement", None)
    if inner is not None:
        tables |= statement_tables(inner)
    return tables


@dataclass
class Arrival:
    """One open-loop submission: at ``time``, ``session`` sends ``sql``.

    ``payload`` rides along into the statement's outcome record — the
    ledger driver stores the expected delta of each UPDATE there so the
    zero-lost-writes oracle can be checked from outcomes alone.
    """

    time: float
    session: "ServerSession"
    sql: str
    payload: dict = field(default_factory=dict)


class ServerSession:
    """One client connection (identity + lifecycle state)."""

    __slots__ = ("id", "tenant", "state", "server", "statements",
                 "committed", "connected_at")

    def __init__(self, server, session_id, tenant, connected_at=0.0):
        self.server = server
        self.id = session_id
        self.tenant = tenant
        self.state = "open"          # open | killed | closed
        self.statements = 0
        self.committed = 0
        self.connected_at = connected_at

    def execute(self, sql):
        """Synchronous convenience: submit + wait for the outcome."""
        return self.server.execute(self, sql)

    def close(self):
        if self.state == "open":
            self.state = "closed"

    def __repr__(self):
        return ("ServerSession(%s, tenant=%r, state=%s, statements=%d)"
                % (self.id, self.tenant, self.state, self.statements))


class _Stmt:
    """Internal per-statement record threading through the event loop."""

    __slots__ = ("seq", "session", "sql", "payload", "arrival_time",
                 "dispatch_time", "attempts", "force_exclusive", "stmt",
                 "tables", "txn", "commit_latency")

    def __init__(self, seq, session, sql, payload, arrival_time):
        self.seq = seq
        self.session = session
        self.sql = sql
        self.payload = payload or {}
        self.arrival_time = arrival_time
        self.dispatch_time = None
        self.attempts = 0            # conflict/publish retries so far
        self.force_exclusive = False
        self.stmt = None             # parsed AST (cached across retries)
        self.tables = frozenset()
        self.txn = None
        self.commit_latency = 0.0    # extra seconds charged at commit


class DualTableServer:
    """Bounded, fair, snapshot-isolated front end for one engine."""

    def __init__(self, engine=None, concurrency=4, max_queue=256,
                 timeout_s=None, seed=0, conflict_retries=4):
        if engine is None:
            from repro.hive import HiveSession
            engine = HiveSession()
        self.engine = engine
        self.cluster = engine.cluster
        self.metrics = self.cluster.metrics
        # Gauge lifecycle is per-server: queue depth / inflight describe
        # THIS instance, so a fresh server on a reused cluster must not
        # show the previous instance's residue in snapshots.
        self.metrics.reset_gauges("server.")
        self.metrics.gauge("server.queue_depth", 0)
        self.metrics.gauge("server.inflight", 0)
        self.concurrency = max(1, int(concurrency))
        self.timeout_s = timeout_s
        self.seed = seed
        self.commit_log = CommitLog()
        self.admission = AdmissionController(max_queue=max_queue,
                                             metrics=self.metrics)
        #: jittered so sessions that collide don't re-collide in
        #: lockstep; fully deterministic per (seed, statement, attempt).
        self.retry_policy = RetryPolicy(max_attempts=1 + int(conflict_retries),
                                        backoff_s=0.05, factor=2.0,
                                        jitter=0.5, seed=seed)
        self.sessions = {}
        self.outcomes = []
        self.now = 0.0
        self._session_seq = itertools.count(1)
        self._stmt_seq = itertools.count(1)
        self._event_seq = itertools.count(1)
        self._events = []
        self._inflight = {}          # txn.id -> StatementTxn
        self._parked = []            # exclusive stmts awaiting table drain
        self._active = 0             # occupied execution slots
        # Let the engine reach back: deferred-publish hooks, the
        # autocompaction txn guard, and SHOW SESSIONS / SERVER STATS.
        engine.server = self
        engine.txn_guard = self.table_busy

    # ------------------------------------------------------------------
    # Connections.
    # ------------------------------------------------------------------
    def connect(self, tenant="default"):
        session = ServerSession(self, "s-%04d" % next(self._session_seq),
                                tenant, connected_at=self.now)
        self.sessions[session.id] = session
        self.metrics.incr("server.connects")
        return session

    def kill_session(self, session_id):
        """Kill a session: in-flight statements abort at completion
        (their buffered writes are discarded — never half-published),
        queued ones are dropped at dispatch."""
        session = self.sessions.get(session_id)
        if session is None or session.state != "open":
            return False
        session.state = "killed"
        for txn in self._inflight.values():
            if txn.session is session:
                txn.doomed = True
        self.metrics.incr("server.sessions_killed")
        return True

    # ------------------------------------------------------------------
    # Introspection (SHOW SESSIONS / SHOW SERVER STATS).
    # ------------------------------------------------------------------
    def session_rows(self):
        inflight_by_session = {}
        for txn in self._inflight.values():
            key = getattr(txn.session, "id", None)
            inflight_by_session[key] = inflight_by_session.get(key, 0) + 1
        return [(s.id, s.tenant, s.state, s.statements, s.committed,
                 inflight_by_session.get(s.id, 0))
                for s in sorted(self.sessions.values(), key=lambda s: s.id)]

    def stats_rows(self):
        counters = self.metrics.counters
        names = ("server.admitted", "server.shed", "server.commits",
                 "server.conflicts", "server.conflict_retries",
                 "server.escalations", "server.publish_failures",
                 "server.failed", "server.killed", "server.timeouts",
                 "server.connects", "server.sessions_killed")
        rows = [(name, counters.get(name, 0)) for name in names]
        rows.append(("server.queue_depth", self.admission.depth))
        rows.append(("server.inflight", len(self._inflight)))
        rows.append(("server.commit_seq", self.commit_log.seq))
        return rows

    # ------------------------------------------------------------------
    # Shared-state queries used by txns and the maintenance daemon.
    # ------------------------------------------------------------------
    def table_busy(self, table, exclude=None):
        """Is an undoomed optimistic writer in flight on ``table``?

        Doubles as the engine's ``txn_guard``: the autocompaction daemon
        skips busy tables, because compacting remaps record IDs out from
        under buffered (not yet published) EditBatches.
        """
        table = table.lower()
        for txn in self._inflight.values():
            if txn is exclude or txn.doomed or txn.state != "executing":
                continue
            if table in txn.tables_written:
                return True
        return False

    # ------------------------------------------------------------------
    # Statement classification.
    # ------------------------------------------------------------------
    def _classify(self, stmt):
        """``(read_only, exclusive_upfront)`` for a parsed statement."""
        if isinstance(stmt, _READ_ONLY):
            return True, False
        if isinstance(stmt, ast.ExplainStmt):
            if not stmt.analyze:
                return True, False
            return self._classify(stmt.statement)
        if isinstance(stmt, ast.AnalyzeWorkloadStmt):
            # Plain ANALYZE only reads metrics; APPLY executes ALTER /
            # COMPACT remediations, so it runs exclusively.
            return (not stmt.apply), stmt.apply
        if isinstance(stmt, (ast.UpdateStmt, ast.DeleteStmt)):
            try:
                info = self.engine.metastore.table(stmt.table)
            except ReproError:
                return False, False   # let execution raise the real error
            if info.storage in ("dualtable", "dualtable-sharded"):
                # Optimistic: the cost model usually picks the EDIT plan,
                # which defers cleanly; an OVERWRITE choice escalates via
                # StatementTxn.require_exclusive mid-flight.
                return False, False
            return False, True
        # INSERT, CREATE/DROP, COMPACT, MERGE, ALTER ...: in-place
        # mutation of shared files/metadata -> exclusive.
        return False, True

    # ------------------------------------------------------------------
    # Event loop.
    # ------------------------------------------------------------------
    def _push(self, time, priority, kind, payload):
        heapq.heappush(self._events,
                       (time, priority, next(self._event_seq), kind, payload))

    def run(self, arrivals, kills=(), concurrency=None):
        """Run an open-loop schedule to completion; returns outcomes.

        ``arrivals`` is an iterable of :class:`Arrival`; ``kills`` is an
        iterable of ``(time, session_id)``.  Re-entrant across calls:
        virtual time and server state carry over, so a shell can
        interleave synchronous statements with batch runs.
        """
        if concurrency is not None:
            self.concurrency = max(1, int(concurrency))
        first = len(self.outcomes)
        for arrival in arrivals:
            self._push(max(arrival.time, self.now), _PRIO_ARRIVAL,
                       "arrival", arrival)
        for time, session_id in kills:
            self._push(max(time, self.now), _PRIO_KILL, "kill", session_id)
        while self._events:
            time, _, _, kind, payload = heapq.heappop(self._events)
            self.now = max(self.now, time)
            if kind == "arrival":
                self._on_arrival(payload)
            elif kind == "kill":
                self.kill_session(payload)
            elif kind == "retry":
                self._on_retry(payload)
            elif kind == "complete":
                self._on_complete(payload)
            self._pump()
        return self.outcomes[first:]

    # -- event handlers -------------------------------------------------
    def _on_arrival(self, arrival):
        session = arrival.session
        rec = _Stmt(next(self._stmt_seq), session, arrival.sql,
                    arrival.payload, self.now)
        session.statements += 1
        if session.state != "open":
            self._finish(rec, "killed",
                         error=SessionKilledError(
                             "session %s is %s" % (session.id, session.state)))
            return
        if not self.admission.submit(session.tenant, rec):
            self._finish(rec, "shed",
                         error=ServerOverloaded(
                             "admission queue full (%d waiting)"
                             % self.admission.depth))

    def _on_retry(self, rec):
        """A backed-off statement rejoins the head of its tenant queue."""
        if rec.session.state != "open":
            self._finish(rec, "killed",
                         error=SessionKilledError(
                             "session %s killed" % rec.session.id))
            return
        self.admission.requeue_front(rec.session.tenant, rec)

    def _on_complete(self, rec):
        self._active -= 1
        txn = rec.txn
        self._inflight.pop(txn.id, None)
        self.metrics.gauge("server.inflight", len(self._inflight))
        if txn.state == COMMITTED:
            # Exclusive statements committed at dispatch; the completion
            # event only releases the slot and records latency.
            self._finish(rec, "committed")
            return
        if txn.doomed or rec.session.state != "open":
            txn.discard()
            self.metrics.incr("server.killed")
            self._finish(rec, "killed",
                         error=SessionKilledError(
                             "session %s killed mid-statement"
                             % rec.session.id))
            return
        conflict = self.commit_log.first_conflict(txn)
        if conflict is not None:
            txn.discard()
            self.metrics.incr("server.conflicts")
            self._retry_or_escalate(rec, "conflict with commit seq %d (%s)"
                                    % (conflict.seq, conflict.session_id))
            return
        self._commit_optimistic(rec, txn)

    # -- dispatch -------------------------------------------------------
    def _pump(self):
        """Fill free slots: parked (drained) statements first, then the
        fair queue."""
        while self._active < self.concurrency:
            rec = self._take_parked()
            from_parked = rec is not None
            if rec is None:
                rec = self.admission.pop()
            if rec is None:
                return
            self._try_dispatch(rec, from_parked=from_parked)

    def _take_parked(self):
        for i, rec in enumerate(self._parked):
            if not any(self.table_busy(t) for t in sorted(rec.tables)):
                del self._parked[i]
                return rec
        return None

    def _try_dispatch(self, rec, from_parked=False):
        session = rec.session
        if session.state != "open":
            self._finish(rec, "killed",
                         error=SessionKilledError(
                             "session %s killed while queued" % session.id))
            return
        if self.timeout_s is not None \
                and self.now - rec.arrival_time > self.timeout_s:
            self.metrics.incr("server.timeouts")
            self.metrics.incr("server.timeouts.%s" % session.tenant)
            self._finish(rec, "timeout",
                         error=StatementTimeout(
                             "queued %.3fs > timeout %.3fs"
                             % (self.now - rec.arrival_time, self.timeout_s)))
            return
        if rec.stmt is None:
            try:
                rec.stmt = parse(rec.sql)
            except ReproError as exc:
                self.metrics.incr("server.failed")
                self._finish(rec, "failed", error=exc)
                return
            rec.tables = frozenset(statement_tables(rec.stmt))
        read_only, exclusive = self._classify(rec.stmt)
        exclusive = exclusive or rec.force_exclusive
        if exclusive and any(self.table_busy(t) for t in sorted(rec.tables)):
            # Exclusive work waits for optimistic writers to drain; it
            # is parked (off-queue) so it cannot block other tenants.
            self._parked.append(rec)
            return
        self._execute(rec, read_only=read_only, exclusive=exclusive)

    def _execute(self, rec, read_only, exclusive):
        """Physically run the statement at the current virtual time.

        The engine is serial, so execution happens *now* against
        published (== committed) state; what the event loop spreads over
        time is the statement's residency: slot occupancy until
        ``now + sim_seconds`` and, for optimistic writers, the commit
        decision at that completion event.
        """
        rec.dispatch_time = self.now
        txn = StatementTxn(self, rec.session, rec.sql, self.commit_log.seq)
        txn.exclusive = exclusive
        if exclusive and not read_only:
            for table in rec.tables:
                txn.tables.add(table)
                txn.tables_written.add(table)
        rec.txn = txn
        self._inflight[txn.id] = txn
        self.metrics.gauge("server.inflight", len(self._inflight))
        engine = self.engine
        with self.cluster.tracer.span(
                "server", "statement", session=rec.session.id,
                snapshot=txn.snapshot_seq, exclusive=exclusive,
                attempt=rec.attempts + 1):
            engine.current_txn = txn
            try:
                result = engine.execute_statement(rec.stmt)
            except TxnConflictError as exc:
                engine.current_txn = None
                self._drop_txn(txn)
                if exc.escalation:
                    self.metrics.incr("server.escalations")
                    rec.force_exclusive = True
                    self._push(self.now + self.retry_policy.backoff(
                        max(1, rec.attempts + 1), key="stmt-%d" % rec.seq),
                        _PRIO_RETRY, "retry", rec)
                else:
                    self.metrics.incr("server.conflicts")
                    self._retry_or_escalate(rec, str(exc))
                return
            except ReproError as exc:
                engine.current_txn = None
                self._resolve_execution_failure(rec, txn, exc)
                return
            finally:
                engine.current_txn = None
        txn.result = result
        # txn.exclusive (not the local flag) also covers a mid-flight
        # require_exclusive escalation that found the table idle.
        if txn.exclusive and txn.has_writes():
            # Exclusive commit point is begin-end of execution: state is
            # already physically applied, so the commit record must be
            # visible to every later-dispatched snapshot.
            self._append_commit(txn)
        self._active += 1
        self._push(self.now + max(0.0, result.sim_seconds),
                   _PRIO_COMPLETE, "complete", rec)

    # -- commit side ----------------------------------------------------
    def _append_commit(self, txn):
        record = self.commit_log.append(
            getattr(txn.session, "id", None),
            txn.tables_written or txn.tables,
            txn.write_keys, txn.exclusive, sql=txn.sql)
        txn.state = COMMITTED
        self.metrics.incr("server.commits")
        return record

    def _commit_optimistic(self, rec, txn):
        with self.cluster.tracer.span("server", "commit",
                                      session=rec.session.id,
                                      snapshot=txn.snapshot_seq,
                                      writes=len(txn.write_keys)):
            if txn.has_writes():
                try:
                    rec.commit_latency += txn.publish()
                except ReproError as exc:
                    if self._recover_tables(txn.tables):
                        # The redo log was durable: the statement rolled
                        # forward, so it IS committed.
                        self._append_commit(txn)
                        self._finish(rec, "committed")
                    else:
                        txn.discard()
                        self.metrics.incr("server.publish_failures")
                        self._retry_or_escalate(
                            rec, "publish failed and rolled back: %s" % exc)
                    return
                self._append_commit(txn)
            else:
                txn.state = COMMITTED
        self._finish(rec, "committed")

    def _retry_or_escalate(self, rec, reason):
        rec.attempts += 1
        policy = self.retry_policy
        if rec.attempts >= policy.max_attempts and not rec.force_exclusive:
            # Progress guarantee: after max optimistic attempts the
            # statement reruns exclusively, which cannot conflict.
            rec.force_exclusive = True
            self.metrics.incr("server.escalations")
        self.metrics.incr("server.conflict_retries")
        backoff = policy.backoff(min(rec.attempts, policy.max_attempts),
                                 key="stmt-%d" % rec.seq)
        self._push(self.now + backoff, _PRIO_RETRY, "retry", rec)
        self.cluster.tracer.annotate(retry_reason=reason)

    def _drop_txn(self, txn):
        txn.discard()
        self._inflight.pop(txn.id, None)
        self.metrics.gauge("server.inflight", len(self._inflight))

    def _resolve_execution_failure(self, rec, txn, exc):
        """A statement raised mid-execution (injected fault, bad SQL...).

        Under deferral nothing of an optimistic statement is durable, so
        it simply rolled back.  Exclusive statements may have died
        mid-commit: run the handlers' recovery protocol (injection
        paused) and count a roll-forward as a commit — the redo log /
        manifest was durable, so the write survived.
        """
        self._drop_txn(txn)
        rolled_forward = self._recover_tables(
            set(txn.tables) | set(rec.tables))
        if rolled_forward:
            txn.state = COMMITTED
            self._append_commit(txn)
            self._finish(rec, "committed")
            return
        self.metrics.incr("server.failed")
        self._finish(rec, "failed", error=exc)

    def _recover_tables(self, tables):
        """Recover every DualTable among ``tables``; True if any DML
        redo log rolled forward (i.e. the statement actually committed)."""
        rolled_forward = False
        faults = self.cluster.faults
        with faults.paused():
            for name in sorted(tables):
                try:
                    handler = self.engine.metastore.table(name).handler
                except ReproError:
                    continue
                if not hasattr(handler, "recover"):
                    continue
                outcome = handler.recover()
                if any(o == "rolled_forward"
                       for _, o in outcome.get("dml", ())):
                    rolled_forward = True
                if outcome.get("compact") == "rolled_forward":
                    rolled_forward = True
        return rolled_forward

    # -- bookkeeping ----------------------------------------------------
    def _finish(self, rec, status, error=None):
        latency = (self.now - rec.arrival_time) + rec.commit_latency
        if status == "committed":
            rec.session.committed += 1
            self.metrics.observe("server.latency_s", latency)
        outcome = {
            "seq": rec.seq,
            "session": rec.session.id,
            "tenant": rec.session.tenant,
            "sql": rec.sql,
            "payload": rec.payload,
            "status": status,
            "attempts": rec.attempts + 1,
            "latency_s": latency,
            "commit_seq": self.commit_log.seq if status == "committed"
                          else None,
            "error": error,
            "result": rec.txn.result if rec.txn is not None else None,
            # Repeatable analytic reads: the commit-log sequence the
            # statement's snapshot was taken at — reads dispatched at the
            # same seq saw the same committed state.
            "snapshot_seq": (rec.txn.snapshot_seq
                             if rec.txn is not None else None),
        }
        self.outcomes.append(outcome)
        return outcome

    # ------------------------------------------------------------------
    # Synchronous convenience API (shell, tests).
    # ------------------------------------------------------------------
    def execute(self, session, sql):
        """Submit one statement at the current virtual time and run the
        event loop until it resolves; raises the typed error on
        anything but a commit."""
        if session.state != "open":
            raise SessionKilledError("session %s is %s"
                                     % (session.id, session.state))
        before = len(self.outcomes)
        self.run([Arrival(time=self.now, session=session, sql=sql)])
        outcome = next(o for o in self.outcomes[before:]
                       if o["sql"] == sql and o["session"] == session.id)
        if outcome["status"] == "committed":
            return outcome["result"]
        error = outcome["error"]
        if isinstance(error, Exception):
            raise error
        raise ServerError("statement %s: %s"
                          % (outcome["status"], outcome["sql"]))
