"""The shard-count identity contract, in one importable place.

A sharded DualTable must behave like the same logical table at every
``INTO n``: identical rows, identical ledger *bytes and ops*, identical
non-cache counters.  Simulated seconds are also identical up to float
summation order — per-charge seconds are ``nbytes/rate + nops*latency``
and different shard counts partition the same byte/op totals into
different charge events, so the accumulated floats can differ in the
last ULP.  :func:`ledger_identity_view` therefore rounds seconds to
``SECONDS_DECIMALS`` places (picosecond agreement) while leaving bytes
and ops exact.  Both ``tests/test_shard.py`` and
``scripts/bench_shard.py --check`` compare through these helpers so the
gate is the same everywhere.

Per-statement makespans (``result.sim_seconds``) are *excluded* on
purpose: shard fan-out multiplies effective slots, so wall-clock shrinks
with shard count — that is the speedup being measured, not a leak.
"""

#: decimal places kept when comparing accumulated ledger seconds.
SECONDS_DECIMALS = 12

#: counter-name fragments excluded from identity comparison: per-shard
#: internals (``shard.*`` heat/routing, ``__s`` child-table counters)
#: and the documented cache-interleaving exclusion.
EXCLUDED_COUNTER_PARTS = ("cache", "__s")
EXCLUDED_COUNTER_PREFIXES = ("shard.",)


def counter_identity_view(counters):
    """Counters that must be byte-identical across shard counts."""
    return {
        name: value for name, value in counters.items()
        if not name.startswith(EXCLUDED_COUNTER_PREFIXES)
        and not any(part in name for part in EXCLUDED_COUNTER_PARTS)
    }


def ledger_identity_view(snapshot):
    """A ledger snapshot with seconds rounded to the identity grain."""
    return {
        "bytes": dict(snapshot["bytes"]),
        "ops": dict(snapshot["ops"]),
        "seconds": {key: round(value, SECONDS_DECIMALS)
                    for key, value in snapshot["seconds"].items()},
        "total_seconds": round(snapshot["total_seconds"],
                               SECONDS_DECIMALS),
    }


def identity_fingerprint(session, transcript):
    """Everything one run must share with every other shard count.

    ``transcript`` is a list of ``(sql, rows)`` pairs; the returned
    triple compares equal across ``INTO 1/4/8``, ``workers`` 1/4, and
    both engines iff the identity contract holds.
    """
    cluster = session.cluster
    return (
        list(transcript),
        ledger_identity_view(cluster.ledger.snapshot()),
        counter_identity_view(cluster.metrics.counters),
    )
