"""Sharded scale-out: DualTables partitioned across region servers.

``repro.shard`` hash-partitions one logical DualTable — master ORC
files *and* the attached HBase table — across N simulated region
servers, with a bucket-based shard map, scatter-gather UNION READ,
owning-shard LOOKUP routing, and a deterministic 2PC shard-rebalance
reusing the COMPACT manifest machinery.
"""

from repro.shard.sharded import (NUM_BUCKETS, SHARD_CHAOS_POINT_NAMES,
                                 SHARD_COLUMNS, ShardedDualTableHandler,
                                 ShardMap)

__all__ = ["NUM_BUCKETS", "SHARD_CHAOS_POINT_NAMES", "SHARD_COLUMNS",
           "ShardMap", "ShardedDualTableHandler"]
