"""Sharded DualTable: hash-partitioned master + attached across shards.

One logical table ``t`` is backed by ``n`` child DualTables
``t__s0 .. t__s<n-1>``, each a complete master-ORC + attached-HBase pair
on its own simulated region server.  Rows are routed by a 64-bucket hash
of the declared shard key; the bucket -> shard assignment (the *shard
map*) is persisted next to the table and can be rebalanced one bucket at
a time with a 2PC move that reuses the COMPACT manifest pattern.

Determinism contract: the *physical layout* is a function of the data
and the bucket hash alone, never of the shard count.  ``insert_rows``
groups rows by bucket and writes each bucket as its own append, so ORC
files never span buckets — the file set (sizes, row groups, encoded
bytes) is byte-identical whether the 64 buckets live on 1, 4 or 8
shards, which keeps ledger totals and data-path counters identical too.
Shard count only changes *placement* (which child owns a file) and the
simulated makespan (scatter-gather fan-out via ``shard_fanout``).

Scatter-gather UNION READ: a scan is still ONE MapReduce job whose
splits span every shard (each split tagged with its owning shard), so
job-level counters match the unsharded table; the runner's
``shard_fanout`` property models the extra region servers by widening
the map slots for makespan only — charges are never scaled.

LOOKUP routing: a point read whose predicate pins the shard key to a
single bucket is planned and executed entirely on the owning child —
exactly one shard's files and attached store are charged.
"""

import json

from repro.common.errors import DualTableError
from repro.mapreduce import Job, stable_hash
from repro.hive.catalog import TableInfo, register_handler
from repro.hive.expressions import (Env, compile_expr, is_true,
                                    referenced_columns)
from repro.hive.pushdown import extract_ranges
from repro.hive.session import QueryResult
from repro.core.editlog import (EditBatch, recover_edit_logs,
                                run_with_retries)
from repro.core.handler import DualTableHandler
from repro.core.udtf import delete_udtf, update_udtf

#: fixed hash-space resolution: rows map to one of 64 buckets, buckets
#: map to shards.  Fixed for the life of the format — rebalancing moves
#: whole buckets, never re-hashes rows.
NUM_BUCKETS = 64

#: ``SHOW SHARDS`` result columns.
SHARD_COLUMNS = ["shard", "buckets", "files", "rows", "master_bytes",
                 "attached_bytes", "heat"]

#: rebalance 2PC injection points, in protocol order.  Everything before
#: ``dualtable.rebalance.manifest`` completes rolls *back*; the manifest
#: write is the commit point; everything after rolls *forward*.
SHARD_CHAOS_POINT_NAMES = (
    "dualtable.rebalance.spill",
    "dualtable.rebalance.manifest",
    "dualtable.rebalance.apply",
    "dualtable.rebalance.cleanup",
)


class ShardMap:
    """Bucket -> shard assignment for one sharded table (persisted).

    The default assignment is ``bucket % num_shards``; REBALANCE edits
    it one bucket at a time and persists the result, so the map survives
    process restarts exactly like the master files do.
    """

    def __init__(self, fs, table_name, num_shards):
        self.fs = fs
        self.table_name = table_name
        self.num_shards = num_shards
        self.path = "/warehouse/%s/shardmap.json" % table_name
        loaded = self._load()
        self.assignment = (loaded if loaded is not None
                           else [b % num_shards for b in range(NUM_BUCKETS)])

    def _load(self):
        """The persisted assignment, or None if absent/torn/mismatched."""
        if not self.fs.exists(self.path):
            return None
        try:
            data = json.loads(
                self.fs.read_file_silent(self.path).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(data, dict) \
                or data.get("table") != self.table_name \
                or data.get("num_shards") != self.num_shards:
            return None
        assignment = data.get("assignment")
        if not isinstance(assignment, list) \
                or len(assignment) != NUM_BUCKETS \
                or not all(isinstance(s, int) and 0 <= s < self.num_shards
                           for s in assignment):
            return None
        return assignment

    def persist(self, assignment=None):
        if assignment is not None:
            self.assignment = list(assignment)
        payload = json.dumps({"table": self.table_name,
                              "num_shards": self.num_shards,
                              "assignment": self.assignment}).encode("utf-8")
        if self.fs.exists(self.path):
            self.fs.delete(self.path)
        self.fs.write_file(self.path, payload)

    @staticmethod
    def bucket_of(value):
        """The fixed hash bucket of one shard-key value."""
        return stable_hash(value) % NUM_BUCKETS

    def shard_of(self, value):
        return self.assignment[self.bucket_of(value)]

    def buckets_of(self, shard):
        return [b for b, s in enumerate(self.assignment) if s == shard]


class _ShardedMasterView:
    """Read-only facade presenting the children's masters as one.

    The inherited DualTable cost/statistics paths (`_estimate_ratio`,
    `_edit_scan_bytes`, plan choice, EXPLAIN sizing) consult
    ``handler.master`` for readers and byte totals; this view aggregates
    the child masters in shard order so those paths work unchanged.
    """

    def __init__(self, handler):
        self._handler = handler
        #: logical location: no files ever live here (children own the
        #: bytes), kept so cache-invalidation group keys stay harmless.
        self.location = "/warehouse/%s/master" % handler.table.name

    def _children(self):
        return self._handler.children

    def file_paths(self):
        return [path for child in self._children()
                for path in child.master.file_paths()]

    def readers(self):
        return [reader for child in self._children()
                for reader in child.master.readers()]

    def _owner(self, path):
        for child in self._children():
            if path.startswith(child.master.location + "/"):
                return child
        raise DualTableError("no shard of %s owns master file %s"
                             % (self._handler.table.name, path))

    def reader(self, path):
        return self._owner(path).master.reader(path)

    def file_meta(self, path):
        return self._owner(path).master.file_meta(path)

    def data_bytes(self):
        return sum(child.master.data_bytes() for child in self._children())

    def row_count(self):
        return sum(child.master.row_count() for child in self._children())

    def avg_row_bytes(self):
        rows = self.row_count()
        return (self.data_bytes() / rows) if rows else 0.0


class _ShardedAttachedView:
    """Aggregate facade over the children's attached tables.

    Carries only whole-table operations (sizes, emptiness, rates); the
    per-file-ID surface is deliberately absent — file IDs are allocated
    per child, so any file-keyed access must go through the owning
    child's attached table, never through this view.
    """

    def __init__(self, handler):
        self._handler = handler
        self.name = "dt_%s_attached" % handler.table.name

    def _children(self):
        return self._handler.children

    @property
    def backend(self):
        return self._children()[0].attached.backend

    @property
    def size_bytes(self):
        return sum(child.attached.size_bytes for child in self._children())

    def is_empty(self):
        return all(child.attached.is_empty() for child in self._children())

    def entry_count(self):
        return sum(child.attached.entry_count()
                   for child in self._children())

    def rates(self, profile):
        return self._children()[0].attached.rates(profile)

    def ensure_available(self):
        for child in self._children():
            child.attached.ensure_available()


class _ShardRouter:
    """Publish surface for shard-tagged edits.

    Record IDs in a sharded EDIT batch are ``(shard, record_id)`` pairs;
    publishing (and redo-log replay) unpacks the tag and writes the raw
    record ID into the owning child's Attached Table.
    """

    def __init__(self, children):
        self._children = children

    def put_update(self, key, new_values):
        shard, record_id = key
        self._children[shard].attached.put_update(record_id, new_values)

    def put_delete(self, key):
        shard, record_id = key
        self._children[shard].attached.put_delete(record_id)


class _ShardBatchTarget:
    """What :class:`EditBatch` / :func:`recover_edit_logs` need of a
    handler, for the *logical* sharded table.

    One statement stages exactly ONE redo log under the logical table's
    ``txn/`` directory regardless of the shard count — per-shard staging
    files would make the charged staging bytes (header overhead per
    file) depend on the shard count and break ledger identity.  The
    ``attached`` router then fans the published edits out to the owning
    children.
    """

    def __init__(self, handler):
        self.env = handler.env
        self.table = handler.table
        self.txn_dir = handler.txn_dir
        self.attached = _ShardRouter(handler.children)


class ShardedDualTableHandler(DualTableHandler):
    """N-region-server DualTable behind the single-table interface."""

    kind = "dualtable-sharded"

    def __init__(self, table, env):
        super().__init__(table, env)
        props = table.properties
        key = props.get("shard.key")
        if not key:
            raise DualTableError(
                "sharded table %s needs a shard.key property" % table.name)
        self.shard_key = str(key).lower()
        table.schema.index_of(self.shard_key)   # raises on unknown column
        self.num_shards = int(props.get("shard.count", 4))
        if self.num_shards < 1:
            raise DualTableError(
                "sharded table %s: shard.count must be >= 1" % table.name)
        self.shard_map = ShardMap(env.fs, table.name, self.num_shards)
        # Children are complete DualTables with their own master
        # directory, attached table, redo log and compaction state; they
        # are NOT registered in the metastore (only the logical table
        # is), so SQL can never address a shard directly.
        child_props = {k: v for k, v in props.items()
                       if not k.startswith("shard.")}
        self.children = []
        for index in range(self.num_shards):
            info = TableInfo(name="%s__s%d" % (table.name, index),
                             schema=table.schema, storage="dualtable",
                             properties=dict(child_props))
            info.handler = DualTableHandler(info, env)
            # All children allocate master-file IDs from the LOGICAL
            # table's counter: IDs are globally unique across shards
            # (record IDs can never collide between children) and the ID
            # sequence — hence every file's encoded metadata bytes — is
            # a function of the insert order alone, not the shard count.
            info.handler.master.table_name = table.name
            self.children.append(info.handler)
        # Swap in the aggregate facades so every inherited statistics /
        # cost-model / planning path sees the union of the shards.
        self.master = _ShardedMasterView(self)
        self.attached = _ShardedAttachedView(self)
        #: consumed by JobRunner: scatter-gather widens the map slots by
        #: the shard count for *makespan only* — charges never scale.
        self.shard_fanout = self.num_shards
        self._batch_target = _ShardBatchTarget(self)
        base = "/warehouse/%s" % table.name
        self._rebalance_dir = base + "/__rebalance__"
        self._rebalance_manifest = base + "/rebalance.manifest"
        #: heat counters are cumulative cluster metrics; the advisor and
        #: the rebalance decision subtract this in-memory baseline so a
        #: completed rebalance restarts the skew measurement from zero.
        self._heat_baseline = [0] * self.num_shards

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def create(self):
        for child in self.children:
            child.create()
        self.metadata.register_table(self.table.name)
        self.shard_map.persist()

    def drop(self):
        for child in self.children:
            child.drop()
        self.metadata.unregister_table(self.table.name)
        fs = self.env.fs
        for path in (self._rebalance_dir, self._rebalance_manifest,
                     self.shard_map.path, "/warehouse/%s" % self.table.name):
            if fs.exists(path):
                fs.delete(path, recursive=True)

    # ------------------------------------------------------------------
    # Crash recovery.
    # ------------------------------------------------------------------
    def recover(self):
        """Heal every shard plus any interrupted rebalance; idempotent.

        A rebalance that reached its manifest is reported as a
        rolled-forward DML entry so server-side recovery accounting
        counts the statement as committed.
        """
        dml = []
        compact_outcomes = []
        for child in self.children:
            outcome = child.recover()
            dml.extend(outcome.get("dml", ()))
            compact_outcomes.append(outcome.get("compact", "clean"))
        # Statement-level redo logs live on the logical table (one per
        # EDIT statement, shard-tagged); replay routes through children.
        dml.extend(recover_edit_logs(self._batch_target))
        rebalance = self._recover_rebalance()
        if rebalance == "rolled_forward":
            dml.append(("rebalance:%s" % self.table.name, "rolled_forward"))
        if "rolled_forward" in compact_outcomes:
            compact = "rolled_forward"
        elif "rolled_back" in compact_outcomes:
            compact = "rolled_back"
        else:
            compact = "clean"
        self.note_attached_bytes()
        return {"compact": compact, "dml": dml, "rebalance": rebalance}

    def _ensure_recovered(self):
        if self._compacting:
            return
        fs = self.env.fs
        if fs.exists(self._rebalance_manifest) \
                or fs.exists(self._rebalance_dir):
            self._recover_rebalance()
        if fs.exists(self.txn_dir) and fs.list_files(self.txn_dir):
            recover_edit_logs(self._batch_target)
        for child in self.children:
            child._ensure_recovered()

    # ------------------------------------------------------------------
    # Writes (bucket-grouped for layout determinism).
    # ------------------------------------------------------------------
    def insert_rows(self, rows, overwrite=False):
        self._check_not_compacting()
        self._ensure_recovered()
        rows = list(rows)
        if overwrite:
            for child in self.children:
                child.insert_rows([], overwrite=True)
        key_idx = self.schema.index_of(self.shard_key)
        buckets = {}
        for row in rows:
            buckets.setdefault(ShardMap.bucket_of(row[key_idx]),
                               []).append(row)
        # One append per bucket, ascending: files never span buckets, so
        # the physical file set is independent of the shard count.
        for bucket in sorted(buckets):
            child = self.children[self.shard_map.assignment[bucket]]
            child.insert_rows(buckets[bucket])
        if overwrite:
            self.note_attached_bytes()
        return len(rows)

    def note_attached_bytes(self):
        total = 0
        for child in self.children:
            child.note_attached_bytes()
            total += child.attached.size_bytes
        self.env.cluster.metrics.gauge(
            "dualtable.attached_bytes.%s" % self.table.name, total)

    # ------------------------------------------------------------------
    # Reads (scatter-gather UNION READ: one job over all shards).
    # ------------------------------------------------------------------
    def scan_splits(self, projection=None, ranges=None):
        self._check_not_compacting()
        self._ensure_recovered()
        metrics = self.env.cluster.metrics
        metrics.incr("dualtable.scans.%s" % self.table.name)
        splits = []
        total_bytes = 0
        for index, child in enumerate(self.children):
            for split in child.scan_splits(projection, ranges):
                split.payload["shard"] = index
                splits.append(split)
                total_bytes += split.size_bytes
        # Canonical global order: master file ids are allocated from the
        # logical table's counter, so *basename* order (the id, not the
        # shard directory) is the same for every shard count — charging
        # order, shuffle sampling, and float accumulation in the ledger
        # stay byte-identical across INTO 1/4/8.
        splits.sort(
            key=lambda s: s.payload.get("path", "").rsplit("/", 1)[-1])
        metrics.observe("dualtable.scan_bytes.%s" % self.table.name,
                        total_bytes)
        return splits

    def _split_child(self, split):
        return self.children[split.payload.get("shard", 0)]

    def read_split(self, split, ctx):
        return self._split_child(split).read_split(split, ctx)

    def read_split_with_rids(self, split, ctx):
        return self._split_child(split).read_split_with_rids(split, ctx)

    def read_split_batches(self, split, ctx, batch_rows=None):
        return self._split_child(split).read_split_batches(
            split, ctx, batch_rows=batch_rows)

    def attached_for_split(self, split):
        return self._split_child(split).attached

    # ------------------------------------------------------------------
    # LOOKUP (routed to exactly the owning shard).
    # ------------------------------------------------------------------
    def _owning_shard(self, ranges):
        """The single shard a point predicate pins, or None.

        Routing requires an equality/IN predicate on the shard key whose
        values all hash to buckets owned by one shard; open ranges fan
        out and must take the scatter-gather scan instead.
        """
        if not ranges:
            return None
        shard_range = ranges.get(self.shard_key)
        if shard_range is None or shard_range.in_set is None:
            return None
        shards = {self.shard_map.shard_of(value)
                  for value in shard_range.in_set}
        if len(shards) != 1:
            return None
        return shards.pop()

    def plan_lookup(self, ranges, projection=None, hit_faults=True):
        shard = self._owning_shard(ranges)
        if shard is None:
            return None
        plan = self.children[shard].plan_lookup(
            ranges, projection=projection, hit_faults=hit_faults)
        if plan is None:
            return None
        plan.shard = shard
        return plan

    def execute_lookup(self, plan, engine="row", batch_rows=None):
        self._check_not_compacting()
        self._ensure_recovered()
        shard = getattr(plan, "shard", 0)
        child = self.children[shard]
        # The child charges the read and emits the global plan/audit
        # counters exactly once; the wrapper adds the logical-table
        # series plus per-shard routing evidence.
        rows, observed, detail = child.execute_lookup(
            plan, engine=engine, batch_rows=batch_rows)
        table = self.table.name
        metrics = self.env.cluster.metrics
        metrics.incr("dualtable.lookups.%s" % table)
        metrics.incr("dualtable.plan.lookup.%s" % table)
        metrics.observe("dualtable.plan.lookup_seconds.%s" % table,
                        observed)
        metrics.observe("dualtable.plan.lookup_bytes.%s" % table,
                        detail.get("lookup_bytes", 0))
        metrics.incr("costmodel.audits.%s" % table)
        audit = detail.get("audit") or {}
        if "rel_error" in audit:
            metrics.observe("costmodel.rel_error.table.%s" % table,
                            audit["rel_error"])
        metrics.incr("shard.lookups.%s.%d" % (table, shard))
        metrics.incr("shard.heat.%s.%d" % (table, shard))
        detail = dict(detail)
        detail["shard"] = shard
        return rows, observed, detail

    # ------------------------------------------------------------------
    # EDIT-plan DML (per-shard delta application, one job).
    # ------------------------------------------------------------------
    def _edit_update(self, session, stmt, detail):
        schema = self.schema
        needed = set()
        if stmt.where is not None:
            needed |= referenced_columns(stmt.where)
        for _, expr in stmt.assignments:
            needed |= referenced_columns(expr)
        projection = [c.name for c in schema if c.name.lower() in needed]
        if not projection:
            projection = [schema.columns[0].name]
        env = Env()
        env.add_schema(projection, alias=stmt.alias)
        predicate = (compile_expr(stmt.where, env)
                     if stmt.where is not None else None)
        assigns = [(schema.index_of(name), compile_expr(expr, env))
                   for name, expr in stmt.assignments]
        ranges = extract_ranges(stmt.where) if stmt.where is not None else {}
        splits = self.scan_splits(projection, ranges)
        batch = EditBatch(self._batch_target, next(self._txn_ids))

        def map_fn(split, ctx):
            shard = split.payload.get("shard", 0)
            buffer = batch.task_buffer()
            for record_id, values in \
                    self.children[shard].read_split_with_rids(split, ctx):
                if predicate is None or is_true(predicate(values)):
                    new_values = {idx: fn(values) for idx, fn in assigns}
                    update_udtf(buffer, (shard, record_id), new_values, ctx)
            batch.absorb(buffer, ctx.task_index)
            return ()

        job = Job(name="update-edit", splits=splits, map_fn=map_fn,
                  reduce_fn=None,
                  properties={"shard_fanout": self.num_shards})
        result = session.runner.run(job)
        commit_seconds = self._commit_edit_batch(session, batch)
        self.note_attached_bytes()
        jobs = session._dml_subquery_jobs + [result]
        sub = sum(j.sim_seconds for j in session._dml_subquery_jobs)
        return QueryResult(
            sim_seconds=sub + result.sim_seconds + commit_seconds,
            jobs=jobs, affected=result.counters.get("updated", 0),
            plan="update-edit", detail=detail)

    def _edit_delete(self, session, stmt, detail):
        schema = self.schema
        needed = (referenced_columns(stmt.where)
                  if stmt.where is not None else set())
        projection = [c.name for c in schema if c.name.lower() in needed]
        if not projection:
            projection = [schema.columns[0].name]
        env = Env()
        env.add_schema(projection, alias=stmt.alias)
        predicate = (compile_expr(stmt.where, env)
                     if stmt.where is not None else None)
        ranges = extract_ranges(stmt.where) if stmt.where is not None else {}
        splits = self.scan_splits(projection, ranges)
        batch = EditBatch(self._batch_target, next(self._txn_ids))

        def map_fn(split, ctx):
            shard = split.payload.get("shard", 0)
            buffer = batch.task_buffer()
            for record_id, values in \
                    self.children[shard].read_split_with_rids(split, ctx):
                if predicate is None or is_true(predicate(values)):
                    delete_udtf(buffer, (shard, record_id), ctx)
            batch.absorb(buffer, ctx.task_index)
            return ()

        job = Job(name="delete-edit", splits=splits, map_fn=map_fn,
                  reduce_fn=None,
                  properties={"shard_fanout": self.num_shards})
        result = session.runner.run(job)
        commit_seconds = self._commit_edit_batch(session, batch)
        self.note_attached_bytes()
        jobs = session._dml_subquery_jobs + [result]
        sub = sum(j.sim_seconds for j in session._dml_subquery_jobs)
        return QueryResult(
            sim_seconds=sub + result.sim_seconds + commit_seconds,
            jobs=jobs, affected=result.counters.get("deleted", 0),
            plan="delete-edit", detail=detail)

    def _commit_edit_batch(self, session, batch):
        """Commit (or defer) the statement's routed batch.

        Heat accounting reads the shard tags off the edit list before
        publish unpacks them; under an optimistic server transaction the
        batch defers under the logical table name exactly like an
        unsharded commit.
        """
        edits = batch.edits
        if not edits:
            return 0.0
        metrics = self.env.cluster.metrics
        table = self.table.name
        per_shard = {}
        for _, key, _ in edits:
            per_shard[key[0]] = per_shard.get(key[0], 0) + 1
        for shard in sorted(per_shard):
            metrics.incr("shard.dml_rows.%s.%d" % (table, shard),
                         per_shard[shard])
            metrics.incr("shard.heat.%s.%d" % (table, shard),
                         per_shard[shard])
        txn = getattr(session, "current_txn", None)
        if txn is not None and not txn.exclusive:
            txn.defer_edit_batch(table, batch, session)
            return 0.0
        with self.env.cluster.tracer.span(
                "phase", "dualtable:edit-commit", table=table):
            return batch.commit(session)

    # ------------------------------------------------------------------
    # COMPACT (per shard; the logical statement folds every child).
    # ------------------------------------------------------------------
    def compaction_units(self):
        """Independently compactable units (the auto-compaction daemon
        decides and runs per child, so one hot shard compacts alone)."""
        return list(self.children)

    def execute_compact(self, session, major=True, partial=False,
                        max_files=None, victim_paths=None):
        self._check_not_compacting()
        self._ensure_recovered()
        sim_seconds = 0.0
        jobs = []
        affected = 0
        folded_bytes = 0
        files = 0
        rows_written = 0
        attached_bytes = self.attached.size_bytes
        for child in self.children:
            result = child.execute_compact(
                session, major=major, partial=partial, max_files=max_files,
                victim_paths=victim_paths)
            sim_seconds += result.sim_seconds
            jobs.extend(result.jobs)
            affected += result.affected
            folded_bytes += result.detail.get("folded_bytes", 0)
            files += result.detail.get("files", 0)
            rows_written += result.detail.get("rows_written", 0)
        self.note_attached_bytes()
        return QueryResult(
            sim_seconds=sim_seconds, jobs=jobs, affected=affected,
            plan="compact",
            detail={"attached_bytes": attached_bytes,
                    "folded_bytes": folded_bytes,
                    "mode": "sharded", "files": files,
                    "shards": self.num_shards,
                    "rows_written": rows_written})

    # ------------------------------------------------------------------
    # SHOW SHARDS / heat accounting.
    # ------------------------------------------------------------------
    def shard_heats(self):
        """Per-shard heat (routed lookups + DML delta rows) since the
        last rebalance."""
        metrics = self.env.cluster.metrics
        table = self.table.name
        return [max(0, metrics.counter("shard.heat.%s.%d" % (table, index))
                    - self._heat_baseline[index])
                for index in range(self.num_shards)]

    def _reset_heat_baseline(self):
        metrics = self.env.cluster.metrics
        table = self.table.name
        self._heat_baseline = [
            metrics.counter("shard.heat.%s.%d" % (table, index))
            for index in range(self.num_shards)]

    def shard_rows(self):
        """``SHOW SHARDS`` rows (see :data:`SHARD_COLUMNS`)."""
        heats = self.shard_heats()
        rows = []
        for index, child in enumerate(self.children):
            rows.append((index,
                         len(self.shard_map.buckets_of(index)),
                         len(child.master.file_paths()),
                         child.master.row_count(),
                         child.master.data_bytes(),
                         child.attached.size_bytes,
                         heats[index]))
        return rows

    # ------------------------------------------------------------------
    # REBALANCE (deterministic one-bucket 2PC move).
    # ------------------------------------------------------------------
    def execute_rebalance(self, session):
        """Move the hottest shard's lowest bucket to the coldest shard.

        Phase 1 (rolls back on a crash): major-compact source and
        destination so the move copies master rows only, then spill the
        *complete* new contents of both shards as JSON and write the
        rebalance manifest — the commit point.  Phase 2 (rolls forward):
        overwrite both children from their spill files, persist the new
        shard map, clean up.  Every phase-2 step is existence-guarded,
        so replaying from any prefix converges.
        """
        self._check_not_compacting()
        self._ensure_recovered()
        src, dst, heats = self._rebalance_choice()
        if src is None:
            return QueryResult(
                sim_seconds=0.0, jobs=[], affected=0,
                plan="rebalance-noop",
                detail={"heats": heats, "reason": "balanced"})
        bucket = min(self.shard_map.buckets_of(src))
        cluster = self.env.cluster
        fs = self.env.fs
        faults = cluster.faults
        table = self.table.name
        keep_path = self._rebalance_dir + "/keep.json"
        dest_path = self._rebalance_dir + "/dest.json"
        assignment = list(self.shard_map.assignment)
        assignment[bucket] = dst
        moved = []
        with cluster.tracer.span("phase", "dualtable:rebalance",
                                 table=table, bucket=bucket,
                                 src=src, dst=dst):
            # Fold both shards' deltas first: the spill then only has to
            # carry master rows, and the attached stores stay empty
            # through the move.
            fold_src = self.children[src].execute_compact(session)
            fold_dst = self.children[dst].execute_compact(session)
            sim_seconds = fold_src.sim_seconds + fold_dst.sim_seconds
            jobs = list(fold_src.jobs) + list(fold_dst.jobs)
            key_idx = self.schema.index_of(self.shard_key)

            def spill():
                faults.hit("dualtable.rebalance.spill", table=table)
                src_rows = list(self.children[src].read_all_rows())
                dst_rows = list(self.children[dst].read_all_rows())
                keep = []
                del moved[:]
                for row in src_rows:
                    if ShardMap.bucket_of(row[key_idx]) == bucket:
                        moved.append(list(row))
                    else:
                        keep.append(list(row))
                dest = [list(row) for row in dst_rows] + moved
                if fs.exists(self._rebalance_dir):
                    fs.delete(self._rebalance_dir, recursive=True)
                fs.mkdirs(self._rebalance_dir)
                fs.write_file(keep_path,
                              json.dumps(keep).encode("utf-8"))
                fs.write_file(dest_path,
                              json.dumps(dest).encode("utf-8"))

            def write_manifest():
                faults.hit("dualtable.rebalance.manifest", table=table)
                manifest = {"table": table, "mode": "rebalance",
                            "bucket": bucket, "src": src, "dst": dst,
                            "assignment": assignment,
                            "keep": keep_path, "dest": dest_path}
                if fs.exists(self._rebalance_manifest):
                    fs.delete(self._rebalance_manifest)
                fs.write_file(self._rebalance_manifest,
                              json.dumps(manifest).encode("utf-8"))

            sim_seconds += run_with_retries(session, spill,
                                            "rebalance-spill")
            sim_seconds += run_with_retries(session, write_manifest,
                                            "rebalance-manifest")
            manifest = self._load_rebalance_manifest()
            sim_seconds += run_with_retries(
                session, lambda: self._apply_rebalance(manifest,
                                                       inject=True),
                "rebalance-apply")
        self._reset_heat_baseline()
        metrics = cluster.metrics
        metrics.incr("shard.rebalances.%s" % table)
        metrics.observe("shard.rebalance.moved_rows", len(moved))
        return QueryResult(
            sim_seconds=sim_seconds, jobs=jobs, affected=len(moved),
            plan="rebalance",
            detail={"bucket": bucket, "src": src, "dst": dst,
                    "moved_rows": len(moved), "heats": heats})

    def _rebalance_choice(self):
        """``(src, dst, heats)`` — deterministic, or ``(None, None, h)``.

        Hottest shard donates (ties -> lowest index), coldest receives
        (ties -> lowest index); no-op when already balanced, when one
        shard holds everything worth nothing, or when the donor owns no
        buckets.
        """
        heats = self.shard_heats()
        if self.num_shards < 2:
            return None, None, heats
        indices = range(self.num_shards)
        src = max(indices, key=lambda i: (heats[i], -i))
        dst = min(indices, key=lambda i: (heats[i], i))
        if src == dst or heats[src] <= heats[dst] \
                or not self.shard_map.buckets_of(src):
            return None, None, heats
        return src, dst, heats

    def _load_rebalance_manifest(self):
        """The rebalance manifest as a dict, or None if absent/torn."""
        fs = self.env.fs
        if not fs.exists(self._rebalance_manifest):
            return None
        try:
            manifest = json.loads(
                fs.read_file_silent(self._rebalance_manifest)
                .decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(manifest, dict) \
                or manifest.get("table") != self.table.name \
                or manifest.get("mode") != "rebalance":
            return None
        assignment = manifest.get("assignment")
        if not isinstance(assignment, list) \
                or len(assignment) != NUM_BUCKETS:
            return None
        return manifest

    def _apply_rebalance(self, manifest, inject=False):
        """Phase 2: overwrite both shards from their spills; idempotent.

        Spill files carry each shard's *complete* new contents, so apply
        is a pure overwrite and replaying any prefix converges: an
        already-applied spill file is still present until cleanup, and
        re-overwriting with it is a no-op in content terms.
        """
        fs = self.env.fs
        faults = self.env.cluster.faults

        def hit(point):
            if inject:
                faults.hit(point, table=self.table.name)

        hit("dualtable.rebalance.apply")
        for key, shard in (("keep", manifest["src"]),
                           ("dest", manifest["dst"])):
            path = manifest[key]
            if fs.exists(path):
                rows = [tuple(self.schema.coerce_row(row))
                        for row in json.loads(
                            fs.read_file(path).decode("utf-8"))]
                self._overwrite_child_bucketed(self.children[shard], rows)
        self.shard_map.persist(manifest["assignment"])
        hit("dualtable.rebalance.cleanup")
        if fs.exists(self._rebalance_dir):
            fs.delete(self._rebalance_dir, recursive=True)
        if fs.exists(self._rebalance_manifest):
            fs.delete(self._rebalance_manifest)

    def _overwrite_child_bucketed(self, child, rows):
        """Replace one child's contents, keeping the bucket-grouped
        layout invariant (one append per bucket, ascending)."""
        key_idx = self.schema.index_of(self.shard_key)
        child.insert_rows([], overwrite=True)
        buckets = {}
        for row in rows:
            buckets.setdefault(ShardMap.bucket_of(row[key_idx]),
                               []).append(row)
        for bucket in sorted(buckets):
            child.insert_rows(buckets[bucket])

    def _recover_rebalance(self):
        """Roll an interrupted rebalance forward or back; idempotent."""
        fs = self.env.fs
        manifest = self._load_rebalance_manifest()
        if manifest is not None:
            self._apply_rebalance(manifest, inject=False)
            self.env.cluster.metrics.incr(
                "shard.rebalance.recovered.%s" % self.table.name)
            return "rolled_forward"
        rolled_back = False
        if fs.exists(self._rebalance_manifest):
            fs.delete(self._rebalance_manifest)     # torn manifest
            rolled_back = True
        if fs.exists(self._rebalance_dir):
            fs.delete(self._rebalance_dir, recursive=True)
            rolled_back = True
        return "rolled_back" if rolled_back else "clean"


register_handler("dualtable-sharded", ShardedDualTableHandler)
