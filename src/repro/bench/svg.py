"""Dependency-free SVG rendering of experiment results.

``dualtable-bench fig13 --svg out/`` writes ``out/fig13.svg`` so the
paper's figures can be regenerated *as figures*, not just tables.  Sweep
experiments (fig5-10, fig13-18) become line charts; categorical ones
(fig4, fig11, fig12) become grouped bar charts.  Everything is hand-rolled
SVG — no plotting libraries required.
"""

WIDTH, HEIGHT = 640, 400
MARGIN_LEFT, MARGIN_RIGHT = 70, 20
MARGIN_TOP, MARGIN_BOTTOM = 48, 88

PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
           "#8c564b"]


def _esc(text):
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _parse_x(label):
    """Sweep x labels are '3/36' or '15%'; return a float in [0, 1]."""
    text = str(label).strip()
    if text.endswith("%"):
        return float(text[:-1]) / 100.0
    if "/" in text:
        numerator, denominator = text.split("/", 1)
        return float(numerator) / float(denominator)
    return float(text)


def _nice_ticks(maximum, count=5):
    if maximum <= 0:
        return [0.0, 1.0]
    raw = maximum / count
    magnitude = 10 ** len(str(int(raw))) / 10 or 1
    step = max(1.0, round(raw / magnitude) * magnitude)
    ticks = []
    value = 0.0
    while value <= maximum * 1.001:
        ticks.append(value)
        value += step
    return ticks or [0.0, maximum]


class _Canvas:
    def __init__(self, title):
        self.parts = [
            '<svg xmlns="http://www.w3.org/2000/svg" width="%d" '
            'height="%d" viewBox="0 0 %d %d" '
            'font-family="sans-serif" font-size="12">'
            % (WIDTH, HEIGHT, WIDTH, HEIGHT),
            '<rect width="%d" height="%d" fill="white"/>' % (WIDTH, HEIGHT),
            '<text x="%d" y="24" font-size="15" font-weight="bold">%s'
            '</text>' % (MARGIN_LEFT, _esc(title)),
        ]
        self.plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
        self.plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM

    def x(self, fraction):
        return MARGIN_LEFT + fraction * self.plot_w

    def y(self, fraction):
        return MARGIN_TOP + (1.0 - fraction) * self.plot_h

    def axes(self, y_max, y_label="simulated seconds"):
        self.parts.append(
            '<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>'
            % (self.x(0), self.y(0), self.x(1), self.y(0)))
        self.parts.append(
            '<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>'
            % (self.x(0), self.y(0), self.x(0), self.y(1)))
        for tick in _nice_ticks(y_max):
            fy = tick / y_max if y_max else 0
            if fy > 1.001:
                continue
            self.parts.append(
                '<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>'
                % (self.x(0), self.y(fy), self.x(1), self.y(fy)))
            self.parts.append(
                '<text x="%g" y="%g" text-anchor="end">%g</text>'
                % (self.x(0) - 6, self.y(fy) + 4, tick))
        self.parts.append(
            '<text x="16" y="%g" transform="rotate(-90 16 %g)" '
            'text-anchor="middle">%s</text>'
            % (self.y(0.5), self.y(0.5), _esc(y_label)))

    def legend(self, labels):
        x0 = MARGIN_LEFT
        y0 = HEIGHT - 18 - 14 * ((len(labels) - 1) // 2)
        for i, label in enumerate(labels):
            col, row = i % 2, i // 2
            lx = x0 + col * (self.plot_w // 2)
            ly = y0 + row * 14
            color = PALETTE[i % len(PALETTE)]
            self.parts.append(
                '<rect x="%g" y="%g" width="10" height="10" fill="%s"/>'
                % (lx, ly - 9, color))
            self.parts.append(
                '<text x="%g" y="%g">%s</text>'
                % (lx + 14, ly, _esc(label)))

    def finish(self):
        self.parts.append("</svg>")
        return "\n".join(self.parts)


def render_line_chart(result, x_label="modification ratio"):
    """Line chart for sweep experiments (first col x, numeric cols y)."""
    series_names = [c for c in result.columns[1:]
                    if any(isinstance(row[result.columns.index(c)],
                                      (int, float)) for row in result.rows)]
    xs = [_parse_x(row[0]) for row in result.rows]
    x_min, x_max = min(xs), max(xs)
    span = (x_max - x_min) or 1.0
    y_max = max(row[result.columns.index(c)]
                for c in series_names for row in result.rows) * 1.05
    canvas = _Canvas(result.title)
    canvas.axes(y_max)
    for i, name in enumerate(series_names):
        idx = result.columns.index(name)
        points = " ".join(
            "%g,%g" % (canvas.x((x - x_min) / span),
                       canvas.y(row[idx] / y_max))
            for x, row in zip(xs, result.rows))
        color = PALETTE[i % len(PALETTE)]
        canvas.parts.append(
            '<polyline points="%s" fill="none" stroke="%s" '
            'stroke-width="2"/>' % (points, color))
        for x, row in zip(xs, result.rows):
            canvas.parts.append(
                '<circle cx="%g" cy="%g" r="3" fill="%s"/>'
                % (canvas.x((x - x_min) / span),
                   canvas.y(row[idx] / y_max), color))
    for x, row in zip(xs, result.rows):
        canvas.parts.append(
            '<text x="%g" y="%g" text-anchor="middle" font-size="10">%s'
            '</text>' % (canvas.x((x - x_min) / span),
                         canvas.y(0) + 14, _esc(row[0])))
    canvas.parts.append(
        '<text x="%g" y="%g" text-anchor="middle">%s</text>'
        % (canvas.x(0.5), canvas.y(0) + 30, _esc(x_label)))
    canvas.legend(series_names)
    return canvas.finish()


def render_bar_chart(result):
    """Grouped bars for (group, category, value, ...) rows."""
    groups = []
    categories = []
    values = {}
    for row in result.rows:
        group, category, value = row[0], row[1], row[2]
        if group not in groups:
            groups.append(group)
        if category not in categories:
            categories.append(category)
        values[(group, category)] = value
    y_max = max(v for v in values.values()) * 1.05
    canvas = _Canvas(result.title)
    canvas.axes(y_max)
    n_groups, n_cats = len(groups), len(categories)
    group_width = 1.0 / n_groups
    bar_width = group_width * 0.8 / max(1, n_cats)
    for gi, group in enumerate(groups):
        for ci, category in enumerate(categories):
            value = values.get((group, category))
            if value is None:
                continue
            fx = gi * group_width + 0.1 * group_width + ci * bar_width
            height_fraction = value / y_max if y_max else 0
            color = PALETTE[ci % len(PALETTE)]
            canvas.parts.append(
                '<rect x="%g" y="%g" width="%g" height="%g" fill="%s"/>'
                % (canvas.x(fx), canvas.y(height_fraction),
                   bar_width * canvas.plot_w,
                   height_fraction * canvas.plot_h, color))
        canvas.parts.append(
            '<text x="%g" y="%g" text-anchor="middle" font-size="10">%s'
            '</text>' % (canvas.x(gi * group_width + group_width / 2),
                         canvas.y(0) + 14, _esc(group)))
    canvas.legend(categories)
    return canvas.finish()


def render_figure(result):
    """Pick a chart type for an experiment, or None if not chartable."""
    if not result.rows:
        return None
    first = result.rows[0]
    if result.columns and result.columns[0] == "ratio":
        return render_line_chart(result)
    if (len(first) >= 3 and isinstance(first[2], (int, float))
            and isinstance(first[0], str) and isinstance(first[1], str)):
        return render_bar_chart(result)
    return None
