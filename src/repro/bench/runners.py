"""Bench environment builders: scaled sessions per experiment.

Each experiment runs on a fresh session (the paper resets the system
between runs).  Data is generated at laptop scale; the cluster profile's
``byte_scale``/``op_scale`` are then set to the paper-to-generated ratio
so reported *simulated* seconds land at paper magnitude.

The bench cluster is a 4-worker profile (24 map slots / 8 reduce slots)
with *effective* device rates — raw hardware rates discounted for the
MapReduce overheads a 2014 Hadoop cluster actually saw.
"""

from dataclasses import dataclass

from repro.cluster import ClusterProfile
from repro.common.units import GB, MB
from repro.hive import HiveSession
from repro.workloads import smartgrid, tpch

#: assumed on-disk bytes per row in the paper's datasets.
GRID_PAPER_ROW_BYTES = 175      # 64 GB over ~365 M rows (Table II)
TPCH_PAPER_ROW_BYTES = 128      # 23 GB over 180 M lineitem rows


@dataclass(frozen=True)
class BenchScale:
    """How much data to generate relative to the paper."""

    name: str
    tpch_orders: int
    grid_fraction: float

    def grid_rows(self, table):
        return smartgrid.scaled_rows(table, self.grid_fraction)


SCALES = {
    "tiny": BenchScale(name="tiny", tpch_orders=250, grid_fraction=2e-5),
    "small": BenchScale(name="small", tpch_orders=900, grid_fraction=8e-5),
    "medium": BenchScale(name="medium", tpch_orders=2500,
                         grid_fraction=2.5e-4),
}

#: wall-clock worker threads for every bench session (``--workers``).
#: Simulated output is byte-identical for any value (repro.parallel).
WORKERS = 1

#: execution engine for every bench session (``--engine``); None keeps
#: the session default.  Simulated output is byte-identical either way.
ENGINE = None


def set_workers(workers):
    """Set the pool width used by every subsequently built session."""
    global WORKERS
    WORKERS = max(1, int(workers))


def set_engine(engine):
    """Select the engine (row|vectorized) for subsequent sessions."""
    from repro.hive.session import ENGINES

    global ENGINE
    if engine is not None and engine not in ENGINES:
        raise ValueError("unknown engine %r (choose from %s)"
                         % (engine, "/".join(ENGINES)))
    ENGINE = engine


def _new_session(profile_name):
    return HiveSession(profile=bench_profile(profile_name), engine=ENGINE)


def bench_profile(name="bench"):
    """Effective-rate cluster profile used for every experiment."""
    return ClusterProfile(
        name=name,
        num_workers=4,
        map_slots_per_node=6,
        reduce_slots_per_node=2,
        hdfs_read_bps=0.4 * GB,
        hdfs_write_bps=0.25 * GB,
        hbase_read_bps=80 * MB,
        hbase_write_bps=100 * MB,
        shuffle_bps=0.2 * GB,
        job_startup_s=8.0,
        task_overhead_s=1.0,
        workers=WORKERS,
    )


def _storage_properties(storage, n_rows, profile_extra=None):
    """Table properties sized so scans parallelize over the bench slots."""
    rows_per_file = max(50, -(-n_rows // 24))       # ceil(n / 24 slots)
    stripe_rows = max(50, rows_per_file // 4)
    props = {"orc.rows_per_file": rows_per_file,
             "orc.stripe_rows": stripe_rows}
    props.update(profile_extra or {})
    return props


# ----------------------------------------------------------------------
# TPC-H environments.
# ----------------------------------------------------------------------
def tpch_session(storage, scale, mode=None, tables=("lineitem", "orders"),
                 read_factor=None):
    """Fresh session with the TPC-H tables loaded under ``storage``."""
    session = _new_session("tpch-bench")
    est_lineitems = scale.tpch_orders * 4
    extra = {}
    if mode is not None:
        extra["dualtable.mode"] = mode
    if read_factor is not None:
        extra["dualtable.read_factor"] = read_factor
    properties = _storage_properties(storage, est_lineitems, extra)
    counts = tpch.load_tpch(session, scale.tpch_orders, storage=storage,
                            properties=properties, tables=tables)
    _apply_tpch_scaling(session, counts)
    return session


def _apply_tpch_scaling(session, counts):
    profile = session.cluster.profile
    actual_rows = counts.get("lineitem") or next(iter(counts.values()))
    paper_rows = (tpch.PAPER_LINEITEM_ROWS if "lineitem" in counts
                  else tpch.PAPER_ORDERS_ROWS)
    table = "lineitem" if "lineitem" in counts else "orders"
    actual_bytes = max(1, session.table(table).handler.data_bytes())
    profile.op_scale = paper_rows / actual_rows
    profile.byte_scale = (paper_rows * TPCH_PAPER_ROW_BYTES) / actual_bytes


# ----------------------------------------------------------------------
# Grid environments.
# ----------------------------------------------------------------------
def grid_session(storage, scale, tables, mode=None, read_factor=None,
                 scaling_table=None):
    """Fresh session with the given grid tables loaded under ``storage``."""
    session = _new_session("grid-bench")
    extra = {}
    if mode is not None:
        extra["dualtable.mode"] = mode
    if read_factor is not None:
        extra["dualtable.read_factor"] = read_factor
    counts = {}
    for table in tables:
        n = scale.grid_rows(table)
        properties = _storage_properties(storage, n, extra)
        counts[table] = smartgrid.load_grid_table(
            session, table, n, storage=storage, properties=properties)
    _apply_grid_scaling(session, counts, scaling_table or tables[0])
    return session


def _apply_grid_scaling(session, counts, scaling_table):
    profile = session.cluster.profile
    actual_rows = counts[scaling_table]
    paper_rows = smartgrid.PAPER_ROW_COUNTS[scaling_table]
    actual_bytes = max(1, session.table(scaling_table).handler.data_bytes())
    profile.op_scale = paper_rows / actual_rows
    profile.byte_scale = (paper_rows * GRID_PAPER_ROW_BYTES) / actual_bytes


def profiled_experiment(experiment_fn, scale):
    """Run one experiment under a process-wide trace collector.

    Every cluster the experiment builds internally gets its tracer
    force-enabled; returns ``(result, trace_doc, metrics_registry)``.
    """
    from repro import obs

    with obs.profiling() as collector:
        result = experiment_fn(scale=scale)
    return result, collector.trace_document(), collector.merged_metrics()


def resolve_scale(scale):
    if isinstance(scale, BenchScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError("unknown scale %r (have: %s)"
                         % (scale, ", ".join(SCALES))) from None
