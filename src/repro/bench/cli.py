"""``dualtable-bench``: regenerate any table/figure from the command line.

Usage::

    dualtable-bench fig5 --scale small
    dualtable-bench all --scale tiny --csv out/
    dualtable-bench list
"""

import argparse
import csv
import json
import os
import sys
import time

from repro.bench.experiments import EXPERIMENTS
from repro.bench.report import render
from repro.bench.runners import (SCALES, profiled_experiment, set_engine,
                                 set_workers)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="dualtable-bench",
        description="Regenerate the paper's tables and figures on the "
                    "simulated cluster.")
    parser.add_argument("experiment",
                        help="experiment id (e.g. fig5, table4, all, list)")
    parser.add_argument("--scale", default="small", choices=sorted(SCALES),
                        help="data scale (default: small)")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write each experiment's rows to "
                             "DIR/<experiment>.csv (plot-ready)")
    parser.add_argument("--svg", metavar="DIR", default=None,
                        help="also render each chartable experiment to "
                             "DIR/<experiment>.svg")
    parser.add_argument("--profile", metavar="DIR", default=None,
                        help="run with tracing enabled and write "
                             "DIR/<experiment>.trace.json (Chrome "
                             "trace-event format, load in about:tracing "
                             "or Perfetto) plus DIR/<experiment>"
                             ".metrics.json")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker threads for real execution (wall "
                             "clock only; simulated output is identical "
                             "for any value; default: 1). Ignored under "
                             "--profile, which requires serial tracing.")
    parser.add_argument("--engine", choices=("row", "vectorized"),
                        default=None,
                        help="execution engine (wall clock only; "
                             "simulated output is identical either way; "
                             "default: the session default, vectorized)")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.experiment == "all":
        names = list(EXPERIMENTS)
    else:
        if args.experiment not in EXPERIMENTS:
            print("unknown experiment %r; try: %s"
                  % (args.experiment, ", ".join(EXPERIMENTS)),
                  file=sys.stderr)
            return 2
        names = [args.experiment]
    workers = max(1, args.workers)
    set_workers(1 if args.profile else workers)
    set_engine(args.engine)
    for name in names:
        started = time.time()
        if args.profile:
            result, trace_doc, metrics = profiled_experiment(
                EXPERIMENTS[name], scale=args.scale)
        else:
            result = EXPERIMENTS[name](scale=args.scale)
        print(render(result))
        print("(regenerated in %.1fs wall time at scale=%s, workers=%d)\n"
              % (time.time() - started, args.scale,
                 1 if args.profile else workers))
        if args.csv:
            write_csv(result, args.csv)
        if args.svg:
            write_svg(result, args.svg)
        if args.profile:
            write_profile(result, trace_doc, metrics, args.profile)
    return 0


def write_profile(result, trace_doc, metrics, directory):
    """Write one experiment's trace + metrics snapshot + dashboard."""
    from repro.obs import export
    from repro.obs.dashboard import metrics_document, write_dashboard

    os.makedirs(directory, exist_ok=True)
    trace_path = os.path.join(directory,
                              "%s.trace.json" % result.experiment)
    export.write_trace(trace_path, trace_doc)
    nspans = sum(1 for ev in trace_doc["traceEvents"]
                 if ev.get("ph") == "X")
    print("wrote %s (%d spans)" % (trace_path, nspans))
    snapshot = metrics.snapshot()
    metrics_path = os.path.join(directory,
                                "%s.metrics.json" % result.experiment)
    with open(metrics_path, "w") as handle:
        json.dump(snapshot, handle, indent=1, sort_keys=True,
                  default=str)
        handle.write("\n")
    print("wrote %s" % metrics_path)
    doc = metrics_document(snapshot, workload=result.experiment)
    html_path, _ = write_dashboard(
        directory, doc,
        html_name="%s.dashboard.html" % result.experiment,
        json_name="%s.advisor.json" % result.experiment)
    print("wrote %s" % html_path)
    return trace_path


def write_svg(result, directory):
    """Render one experiment as DIR/<experiment>.svg (when chartable)."""
    from repro.bench.svg import render_figure

    svg = render_figure(result)
    if svg is None:
        print("(%s has no chartable form; skipped svg)" % result.experiment)
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "%s.svg" % result.experiment)
    with open(path, "w") as handle:
        handle.write(svg)
    print("wrote %s" % path)
    return path


def write_csv(result, directory):
    """Write one experiment's rows as DIR/<experiment>.csv."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "%s.csv" % result.experiment)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.columns)
        writer.writerows(result.rows)
    print("wrote %s" % path)
    return path


if __name__ == "__main__":
    raise SystemExit(main())
