"""Experiment drivers: one function per table/figure of the paper.

Every function returns an :class:`ExperimentResult` whose rows are the
same series the paper plots.  Systems compared:

* ``Hive(HDFS)``        — ORC-on-HDFS, UPDATE/DELETE as INSERT OVERWRITE;
* ``Hive(HBase)``       — HBase storage handler, in-place mutations;
* ``DualTable EDIT``    — DualTable with the EDIT plan forced;
* ``DualTable Cost``    — DualTable with runtime cost-model plan choice.

Each data point runs on a freshly loaded session ("we reset the system
every time we finish one experiment", Section VI-A).  Ratio sweeps that
feed several figures (update time, following read, total) are computed
once and memoized per scale.
"""

from dataclasses import dataclass, field

from repro.core.cost_model import CostModel
from repro.bench.runners import (bench_profile, grid_session, resolve_scale,
                                 tpch_session)
from repro.workloads import dml_stats, smartgrid, tpch

GRID_DAY_POINTS = [1, 3, 5, 7, 9, 11, 13, 15, 17]
TPCH_RATIOS = [0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40,
               0.45, 0.50]


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    experiment: str
    title: str
    columns: list
    rows: list
    notes: str = ""
    extras: dict = field(default_factory=dict)


_SWEEP_CACHE = {}


def _memoized(key, builder):
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = builder()
    return _SWEEP_CACHE[key]


# ----------------------------------------------------------------------
# Tables I–III: workload characterization.
# ----------------------------------------------------------------------
def table1(scale="small"):
    rows = dml_stats.dml_ratio_table()
    return ExperimentResult(
        experiment="table1",
        title="Table I: ratio of DML operations in grid scenarios",
        columns=["scenario", "total", "delete", "update", "merge",
                 "dml_percent"],
        rows=rows,
        notes="Recomputed from the paper's statement counts; the %% DML "
              "column matches the paper for every scenario (min %d%%)."
              % dml_stats.minimum_dml_percent())


def _schema_table(experiment, title, tables, scale):
    scale = resolve_scale(scale)
    rows = []
    for table in tables:
        schema = smartgrid.SCHEMAS[table]
        shown = ", ".join(n for n, _ in schema[:5])
        rows.append((table, smartgrid.PAPER_ROW_COUNTS[table],
                     scale.grid_rows(table), len(schema), shown))
    return ExperimentResult(
        experiment=experiment, title=title,
        columns=["table", "paper_rows", "generated_rows", "columns",
                 "key_columns"],
        rows=rows,
        notes="Synthetic rows reproduce each statement's selectivity.")


def table2(scale="small"):
    return _schema_table(
        "table2", "Table II: real State Grid data set (read experiments)",
        ["yh_gbjld", "zd_gbcld", "zc_zdzc", "rw_gbrw", "tj_gbsjwzl_mx",
         "tj_dzdyh"], scale)


def table3(scale="small"):
    return _schema_table(
        "table3", "Table III: State Grid data set (DML experiments)",
        ["tj_tdjl", "tj_td", "tj_sjwzl_r", "tj_dysjwzl_mx", "tj_sjwzl_y",
         "tj_gk"], scale)


# ----------------------------------------------------------------------
# Figure 4: grid read performance, empty Attached Table.
# ----------------------------------------------------------------------
def fig4(scale="small"):
    scale = resolve_scale(scale)
    join_tables = ["yh_gbjld", "zd_gbcld", "zc_zdzc"]
    rows = []
    for system, storage, mode in (("Hive(HDFS)", "orc", None),
                                  ("DualTable", "dualtable", "cost")):
        session = grid_session(storage, scale, join_tables, mode=mode,
                               scaling_table="zc_zdzc")
        r1 = session.execute(smartgrid.GRID_QUERY_1)
        session2 = grid_session(storage, scale, ["tj_gbsjwzl_mx"],
                                mode=mode)
        r2 = session2.execute(smartgrid.GRID_QUERY_2)
        rows.append((system, "query1_join", round(r1.sim_seconds, 2)))
        rows.append((system, "query2_count", round(r2.sim_seconds, 2)))
    return ExperimentResult(
        experiment="fig4",
        title="Fig 4: read performance, Hive vs DualTable (empty attached)",
        columns=["system", "query", "sim_seconds"],
        rows=rows,
        notes="Paper: DualTable within ~8-12%% of Hive — the overhead of "
              "the (empty) Attached Table lookup.")


# ----------------------------------------------------------------------
# Grid update/delete ratio sweeps (Figures 5-10).
# ----------------------------------------------------------------------
def _grid_sweep(scale, kind):
    scale = resolve_scale(scale)
    statement = (smartgrid.update_days_sql if kind == "update"
                 else smartgrid.delete_days_sql)
    systems = [("Hive(HDFS)", "orc", None),
               ("DualTable EDIT", "dualtable", "edit"),
               ("DualTable Cost-Model", "dualtable", "cost")]
    points = []
    for n_days in GRID_DAY_POINTS:
        point = {"n_days": n_days, "ratio": n_days / 36.0}
        for system, storage, mode in systems:
            session = grid_session(storage, scale, ["tj_gbsjwzl_mx"],
                                   mode=mode)
            dml = session.execute(statement(n_days))
            read = session.execute(smartgrid.FOLLOWING_SELECT_SQL)
            point[system] = {
                "dml_seconds": dml.sim_seconds,
                "read_seconds": read.sim_seconds,
                "total_seconds": dml.sim_seconds + read.sim_seconds,
                "plan": dml.detail.get("plan", dml.plan),
                "affected": dml.affected,
            }
        points.append(point)
    return points


def _grid_update_sweep(scale):
    return _memoized(("grid-update", resolve_scale(scale).name),
                     lambda: _grid_sweep(scale, "update"))


def _grid_delete_sweep(scale):
    return _memoized(("grid-delete", resolve_scale(scale).name),
                     lambda: _grid_sweep(scale, "delete"))


def _sweep_result(points, experiment, title, metric, systems, notes=""):
    columns = ["ratio"] + [s for s, _ in systems] \
        + ["cost_model_plan"]
    rows = []
    for point in points:
        row = ["%d/36" % point["n_days"] if "n_days" in point
               else "%d%%" % round(point["ratio"] * 100)]
        for _, key in systems:
            row.append(round(point[key][metric], 2))
        cost_key = next((k for _, k in systems if "Cost" in k), None)
        row.append(point[cost_key]["plan"] if cost_key else "-")
        rows.append(tuple(row))
    return ExperimentResult(experiment=experiment, title=title,
                            columns=columns, rows=rows, notes=notes)


_GRID_SYSTEMS = [("Hive(HDFS)", "Hive(HDFS)"),
                 ("DualTable EDIT", "DualTable EDIT"),
                 ("DualTable Cost-Model", "DualTable Cost-Model")]


def fig5(scale="small"):
    return _sweep_result(
        _grid_update_sweep(scale), "fig5",
        "Fig 5: grid UPDATE run time vs modification ratio",
        "dml_seconds", _GRID_SYSTEMS,
        notes="Paper: EDIT beats Hive below ~6/36; the cost model switches "
              "to OVERWRITE past the crossover.")


def fig6(scale="small"):
    return _sweep_result(
        _grid_delete_sweep(scale), "fig6",
        "Fig 6: grid DELETE run time vs deletion ratio",
        "dml_seconds", _GRID_SYSTEMS,
        notes="Paper: Hive's time falls with the ratio (less data written) "
              "so the crossover is earlier than for updates (~10/36).")


def fig7(scale="small"):
    return _sweep_result(
        _grid_update_sweep(scale), "fig7",
        "Fig 7: SELECT after UPDATE (UnionRead overhead)",
        "read_seconds",
        [("Read in Hive(HDFS)", "Hive(HDFS)"),
         ("UnionRead in DualTable", "DualTable EDIT")],
        notes="Paper: UnionRead cost grows with the Attached Table; up to "
              "~2.7x Hive at 18/36.")


def fig8(scale="small"):
    return _sweep_result(
        _grid_update_sweep(scale), "fig8",
        "Fig 8: total UPDATE + following SELECT",
        "total_seconds",
        [("Hive(HDFS)+Read", "Hive(HDFS)"),
         ("DualTable EDIT+UnionRead", "DualTable EDIT"),
         ("DualTable+Read", "DualTable Cost-Model")])


def fig9(scale="small"):
    return _sweep_result(
        _grid_delete_sweep(scale), "fig9",
        "Fig 9: SELECT after DELETE (UnionRead overhead)",
        "read_seconds",
        [("Read in Hive(HDFS)", "Hive(HDFS)"),
         ("UnionRead in DualTable", "DualTable EDIT")])


def fig10(scale="small"):
    return _sweep_result(
        _grid_delete_sweep(scale), "fig10",
        "Fig 10: total DELETE + following SELECT",
        "total_seconds",
        [("Hive(HDFS)+Read", "Hive(HDFS)"),
         ("DualTable EDIT+UnionRead", "DualTable EDIT"),
         ("DualTable+Read", "DualTable Cost-Model")])


# ----------------------------------------------------------------------
# Table IV: the eight representative grid statements.
# ----------------------------------------------------------------------
def table4(scale="small"):
    scale = resolve_scale(scale)
    rows = []
    for stmt in smartgrid.TABLE4_STATEMENTS:
        table = stmt["table"]
        hive = grid_session("orc", scale, [table])
        hive_result = hive.execute(stmt["sql"])
        dual = grid_session("dualtable", scale, [table], mode="cost")
        dual_result = dual.execute(stmt["sql"])
        improvement = round(
            100.0 * hive_result.sim_seconds
            / max(1e-9, dual_result.sim_seconds))
        paper_improvement = round(
            100.0 * stmt["paper_hive_s"] / stmt["paper_dualtable_s"])
        rows.append((
            stmt["id"], "%.2f%%" % (stmt["ratio"] * 100),
            round(hive_result.sim_seconds, 2),
            round(dual_result.sim_seconds, 2),
            "%d%%" % improvement,
            "%d%%" % paper_improvement,
            dual_result.detail.get("plan", dual_result.plan),
            dual_result.affected,
        ))
    return ExperimentResult(
        experiment="table4",
        title="Table IV: real grid DML statements, Hive vs DualTable",
        columns=["stmt", "ratio", "hive_s", "dualtable_s", "improvement",
                 "paper_improvement", "plan", "affected"],
        rows=rows,
        notes="Paper: DualTable wins every statement, 173%%-976%%.")


# ----------------------------------------------------------------------
# Figure 11: TPC-H read performance on three systems.
# ----------------------------------------------------------------------
def fig11(scale="small"):
    scale = resolve_scale(scale)
    queries = [("query-a(Q1)", tpch.QUERY_A_Q1),
               ("query-b(Q12)", tpch.QUERY_B_Q12),
               ("query-c(count)", tpch.QUERY_C_COUNT)]
    rows = []
    for system, storage, mode in (("Hive(HDFS)", "orc", None),
                                  ("Hive(HBase)", "hbase", None),
                                  ("DualTable", "dualtable", "cost")):
        session = tpch_session(storage, scale, mode=mode)
        for label, sql in queries:
            result = session.execute(sql)
            rows.append((system, label, round(result.sim_seconds, 2)))
    return ExperimentResult(
        experiment="fig11",
        title="Fig 11: TPC-H read performance (30GB set)",
        columns=["system", "query", "sim_seconds"],
        rows=rows,
        notes="Paper: DualTable ~= Hive(HDFS); Hive(HBase) far slower.")


# ----------------------------------------------------------------------
# Figure 12: TPC-H DML statements on three systems.
# ----------------------------------------------------------------------
def fig12(scale="small"):
    scale = resolve_scale(scale)
    rows = []
    for system, storage, mode in (("Hive(HDFS)", "orc", None),
                                  ("Hive(HBase)", "hbase", None),
                                  ("DualTable", "dualtable", "cost")):
        for label, sql_fn in (
                ("DML-a(update 5% lineitem)", lambda s: tpch.dml_a_sql()),
                ("DML-b(delete 2% lineitem)", lambda s: tpch.dml_b_sql()),
                ("DML-c(join update 16% orders)",
                 lambda s: tpch.dml_c_sql(s.tpch_orders))):
            session = tpch_session(storage, scale, mode=mode)
            result = session.execute(sql_fn(scale))
            rows.append((system, label, round(result.sim_seconds, 2),
                         result.detail.get("plan", result.plan)))
    return ExperimentResult(
        experiment="fig12",
        title="Fig 12: TPC-H update performance (30GB set)",
        columns=["system", "statement", "sim_seconds", "plan"],
        rows=rows,
        notes="Paper: DualTable most efficient on all three statements.")


# ----------------------------------------------------------------------
# TPC-H ratio sweeps (Figures 13-18).
# ----------------------------------------------------------------------
def _tpch_sweep(scale, kind):
    scale = resolve_scale(scale)
    statement = (tpch.update_ratio_sql if kind == "update"
                 else tpch.delete_ratio_sql)
    systems = [("Hive(HDFS)", "orc", None),
               ("DualTable EDIT", "dualtable", "edit"),
               ("DualTable Cost-Model", "dualtable", "cost")]
    points = []
    for ratio in TPCH_RATIOS:
        point = {"ratio": ratio}
        for system, storage, mode in systems:
            session = tpch_session(storage, scale, mode=mode,
                                   tables=("lineitem",))
            dml = session.execute(statement(ratio))
            read = session.execute(tpch.FULL_SCAN_SQL)
            point[system] = {
                "dml_seconds": dml.sim_seconds,
                "read_seconds": read.sim_seconds,
                "total_seconds": dml.sim_seconds + read.sim_seconds,
                "plan": dml.detail.get("plan", dml.plan),
                "affected": dml.affected,
            }
        points.append(point)
    return points


def _tpch_update_sweep(scale):
    return _memoized(("tpch-update", resolve_scale(scale).name),
                     lambda: _tpch_sweep(scale, "update"))


def _tpch_delete_sweep(scale):
    return _memoized(("tpch-delete", resolve_scale(scale).name),
                     lambda: _tpch_sweep(scale, "delete"))


def fig13(scale="small"):
    return _sweep_result(
        _tpch_update_sweep(scale), "fig13",
        "Fig 13: TPC-H UPDATE run time vs ratio (1%-50%)",
        "dml_seconds", _GRID_SYSTEMS,
        notes="Paper: Hive flat; EDIT grows with ratio; crossover ~35%, "
              "where the cost model switches to OVERWRITE.")


def fig14(scale="small"):
    return _sweep_result(
        _tpch_delete_sweep(scale), "fig14",
        "Fig 14: TPC-H DELETE run time vs ratio (1%-50%)",
        "dml_seconds", _GRID_SYSTEMS,
        notes="Paper: Hive's cost falls with ratio, so the crossover is "
              "lower than for updates.")


def fig15(scale="small"):
    return _sweep_result(
        _tpch_update_sweep(scale), "fig15",
        "Fig 15: full scan after UPDATE (UnionRead overhead)",
        "read_seconds",
        [("Read in Hive(HDFS)", "Hive(HDFS)"),
         ("UnionRead in DualTable", "DualTable EDIT")],
        notes="Paper: overhead linear in the Attached Table size; no cost "
              "model in this experiment.")


def fig16(scale="small"):
    return _sweep_result(
        _tpch_update_sweep(scale), "fig16",
        "Fig 16: UPDATE + successive read (total)",
        "total_seconds",
        [("Hive(HDFS)+Read", "Hive(HDFS)"),
         ("DualTable EDIT+UnionRead", "DualTable EDIT"),
         ("DualTable+Read", "DualTable Cost-Model")],
        notes="Paper: crossover slightly below 35% due to the UnionRead "
              "overhead of the following read.")


def fig17(scale="small"):
    return _sweep_result(
        _tpch_delete_sweep(scale), "fig17",
        "Fig 17: full scan after DELETE (UnionRead overhead)",
        "read_seconds",
        [("Read in Hive(HDFS)", "Hive(HDFS)"),
         ("UnionRead in DualTable", "DualTable EDIT")])


def fig18(scale="small"):
    return _sweep_result(
        _tpch_delete_sweep(scale), "fig18",
        "Fig 18: DELETE + successive read (total)",
        "total_seconds",
        [("Hive(HDFS)+Read", "Hive(HDFS)"),
         ("DualTable EDIT+UnionRead", "DualTable EDIT"),
         ("DualTable+Read", "DualTable Cost-Model")],
        notes="Paper: below ~30% delete ratio DualTable is always more "
              "efficient; the cost model always chooses the best plan.")


# ----------------------------------------------------------------------
# Ablations (design choices DESIGN.md calls out).
# ----------------------------------------------------------------------
def ablation_costmodel(scale="small"):
    """Does the cost model pick the measured-best plan at every ratio?"""
    points = _tpch_update_sweep(scale)
    rows = []
    correct = 0
    for point in points:
        edit_s = point["DualTable EDIT"]["dml_seconds"]
        # Hive(HDFS) time is the OVERWRITE plan's time on the same data.
        over_s = point["Hive(HDFS)"]["dml_seconds"]
        best = "edit" if edit_s <= over_s else "overwrite"
        chosen = point["DualTable Cost-Model"]["plan"]
        ok = chosen == best or abs(edit_s - over_s) / max(edit_s,
                                                          over_s) < 0.15
        correct += bool(ok)
        rows.append(("%d%%" % round(point["ratio"] * 100),
                     round(edit_s, 2), round(over_s, 2), best, chosen,
                     "yes" if ok else "NO"))
    return ExperimentResult(
        experiment="ablation-costmodel",
        title="Ablation: cost model vs measured best plan (TPC-H updates)",
        columns=["ratio", "edit_s", "overwrite_s", "measured_best",
                 "model_choice", "agrees(±15%)"],
        rows=rows,
        notes="%d/%d points agree within the 15%% indifference band."
              % (correct, len(rows)))


def ablation_acid(scale="small"):
    """DualTable vs Hive-ACID base+delta across a burst of updates."""
    scale = resolve_scale(scale)
    rows = []
    for system, storage, mode in (("DualTable", "dualtable", "cost"),
                                  ("Hive ACID (base+delta)", "acid", None)):
        session = tpch_session(storage, scale, mode=mode,
                               tables=("lineitem",))
        for i in range(1, 6):
            upd = session.execute(tpch.update_ratio_sql(0.02))
            read = session.execute(tpch.FULL_SCAN_SQL)
            rows.append((system, i, round(upd.sim_seconds, 2),
                         round(read.sim_seconds, 2)))
    return ExperimentResult(
        experiment="ablation-acid",
        title="Ablation: DualTable vs Hive-ACID deltas (5 x 2% updates)",
        columns=["system", "txn", "update_s", "read_after_s"],
        rows=rows,
        notes="ACID readers re-scan every delta; DualTable's Attached "
              "Table is one random-access store.")


def ablation_compact(scale="small"):
    """Read cost before/after COMPACT as the Attached Table grows."""
    scale = resolve_scale(scale)
    session = tpch_session("dualtable", scale, mode="edit",
                           tables=("lineitem",))
    rows = []
    baseline = session.execute(tpch.FULL_SCAN_SQL)
    rows.append(("initial", 0, round(baseline.sim_seconds, 2)))
    handler = session.table("lineitem").handler
    for pct in (10, 20, 30):
        session.execute(tpch.update_ratio_sql(pct / 100.0))
        read = session.execute(tpch.FULL_SCAN_SQL)
        rows.append(("after +%d%% updates" % pct,
                     handler.attached.size_bytes,
                     round(read.sim_seconds, 2)))
    compact = session.execute("COMPACT TABLE lineitem")
    read = session.execute(tpch.FULL_SCAN_SQL)
    rows.append(("after COMPACT (%.0fs)" % compact.sim_seconds,
                 handler.attached.size_bytes, round(read.sim_seconds, 2)))
    return ExperimentResult(
        experiment="ablation-compact",
        title="Ablation: UnionRead cost vs Attached size, and COMPACT",
        columns=["state", "attached_bytes", "read_s"],
        rows=rows,
        notes="COMPACT restores (near-)baseline read cost by folding the "
              "Attached Table into a new Master Table.")


def ablation_attached(scale="small"):
    """Attached-Table backend comparison: HBase vs a B-tree row store.

    The paper's future work: "we will evaluate other storage options for
    the Attached Table".  Same EDIT-plan updates, two backends.
    """
    scale = resolve_scale(scale)
    rows = []
    for backend in ("hbase", "btree"):
        for ratio in (0.01, 0.05, 0.20):
            session = tpch_session("dualtable", scale, mode="edit",
                                   tables=("lineitem",))
            handler = session.table("lineitem").handler
            handler.attached.drop()
            handler.attached.backend = backend
            handler.attached.create()
            upd = session.execute(tpch.update_ratio_sql(ratio))
            read = session.execute(tpch.FULL_SCAN_SQL)
            rows.append((backend, "%d%%" % round(ratio * 100),
                         round(upd.sim_seconds, 2),
                         round(read.sim_seconds, 2)))
    return ExperimentResult(
        experiment="ablation-attached",
        title="Ablation: Attached-Table backend (HBase vs B-tree store)",
        columns=["backend", "ratio", "update_s", "read_after_s"],
        rows=rows,
        notes="The B-tree backend pays a page read-modify-write per "
              "random update; HBase's log-structured writes are cheaper "
              "per edit but scans carry LSM overheads.")


def ablation_k(scale="small"):
    """Crossover ratio as a function of successive reads k (Sec. IV)."""
    scale = resolve_scale(scale)
    session = tpch_session("dualtable", scale, tables=("lineitem",))
    handler = session.table("lineitem").handler
    d_bytes = handler.master.data_bytes()
    total_rows = handler.master.row_count()
    model = CostModel(session.cluster.profile)
    rows = []
    for k in (1, 2, 5, 10, 30):
        upd = model.update_crossover_ratio(d_bytes, total_rows,
                                           update_cell_bytes=30, k=k)
        dele = model.delete_crossover_ratio(d_bytes, total_rows, k=k)
        rows.append((k, "%.1f%%" % (100 * upd), "%.1f%%" % (100 * dele)))
    return ExperimentResult(
        experiment="ablation-k",
        title="Ablation: EDIT/OVERWRITE crossover ratio vs successive "
              "reads k",
        columns=["k", "update_crossover", "delete_crossover"],
        rows=rows,
        notes="Paper: 'the more often the data is read the lower the "
              "cross over point'.")


def ablation_partitions(scale="small"):
    """Hive partition-level overwrite vs DualTable.

    Hive's own mitigation for the update problem is partition granularity
    ("complete overwrite ... at table or partition level").  This ablation
    loads the grid measurement table three ways — flat ORC, ORC
    partitioned by day, DualTable — and runs (a) a partition-aligned
    update (one whole day) and (b) a sub-partition update (one org within
    one day, ~0.14 %), the case partitioning cannot help with.
    """
    from repro.workloads.smartgrid import GRID_DAYS, ORG_CODES, SCHEMAS

    scale = resolve_scale(scale)
    n = scale.grid_rows("tj_gbsjwzl_mx")
    aligned_sql = ("UPDATE tj_gbsjwzl_mx SET cjbm = 'x' "
                   "WHERE rq = '%s'" % GRID_DAYS[4])
    sub_sql = ("UPDATE tj_gbsjwzl_mx SET cjbm = 'x' "
               "WHERE rq = '%s' AND dwdm = '%s'"
               % (GRID_DAYS[4], ORG_CODES[3]))
    rows = []
    for label, builder in (
            ("Hive flat ORC", lambda s: grid_session(
                "orc", scale, ["tj_gbsjwzl_mx"])),
            ("Hive partitioned by day", lambda s: _partitioned_grid(scale)),
            ("DualTable", lambda s: grid_session(
                "dualtable", scale, ["tj_gbsjwzl_mx"], mode="cost"))):
        for case, sql in (("aligned (1 day)", aligned_sql),
                          ("sub-partition (day+org)", sub_sql)):
            session = builder(scale)
            result = session.execute(sql)
            rows.append((label, case, round(result.sim_seconds, 2),
                         result.detail.get("plan", result.plan),
                         result.affected))
    return ExperimentResult(
        experiment="ablation-partitions",
        title="Ablation: partition-level overwrite vs DualTable",
        columns=["system", "update", "sim_seconds", "plan", "affected"],
        rows=rows,
        notes="Partitioning rescues Hive only when updates align with "
              "partition boundaries; DualTable's row-level EDIT wins the "
              "sub-partition case either way.")


def _partitioned_grid(scale):
    """Grid measurement table partitioned by day (rq last)."""
    from repro.bench.runners import (_apply_grid_scaling,
                                     _storage_properties)
    from repro.hive import HiveSession
    from repro.workloads import smartgrid

    session = HiveSession(profile=bench_profile("grid-bench"))
    n = scale.grid_rows("tj_gbsjwzl_mx")
    props = _storage_properties("orc", n)
    schema = smartgrid.SCHEMAS["tj_gbsjwzl_mx"]
    data_cols = [(c, t) for c, t in schema if c != "rq"]
    cols = ", ".join("%s %s" % (c, t) for c, t in data_cols)
    prop_sql = ", ".join("'%s' = '%s'" % (k, v)
                         for k, v in sorted(props.items()))
    session.execute(
        "CREATE TABLE tj_gbsjwzl_mx (%s) PARTITIONED BY (rq date) "
        "STORED AS ORC TBLPROPERTIES (%s)" % (cols, prop_sql))
    rq_index = [c for c, _ in schema].index("rq")
    rows = []
    for row in smartgrid.grid_rows_cached("tj_gbsjwzl_mx", n):
        rest = row[:rq_index] + row[rq_index + 1:]
        rows.append(rest + (row[rq_index],))
    session.load_rows("tj_gbsjwzl_mx", rows)
    _apply_grid_scaling(session, {"tj_gbsjwzl_mx": len(rows)},
                        "tj_gbsjwzl_mx")
    return session


def ablation_failure(scale="small"):
    """Fault tolerance: DualTable under a datanode failure.

    One of the paper's motivations for moving the grid onto Hadoop is
    fault tolerance.  This ablation kills a datanode mid-workload and
    verifies the DualTable keeps answering correctly (reads fall back to
    surviving replicas; re-replication restores the factor).
    """
    scale = resolve_scale(scale)
    session = tpch_session("dualtable", scale, mode="cost",
                           tables=("lineitem",))
    rows = []
    baseline = session.execute(tpch.QUERY_C_COUNT)
    rows.append(("baseline count", baseline.scalar(),
                 round(baseline.sim_seconds, 2)))
    session.execute(tpch.update_ratio_sql(0.02))
    session.fs.kill_datanode(0)
    degraded = session.execute(tpch.QUERY_C_COUNT)
    rows.append(("count after datanode loss", degraded.scalar(),
                 round(degraded.sim_seconds, 2)))
    created = session.fs.re_replicate()
    rows.append(("replicas re-created", created, ""))
    update = session.execute(tpch.update_ratio_sql(0.01))
    rows.append(("update after recovery (plan=%s)"
                 % update.detail.get("plan"), update.affected,
                 round(update.sim_seconds, 2)))
    session.fs.revive_datanode(0)

    # Region-server crash mid-UPDATE: the publish RPC dies, the region
    # memstores are wiped, and the statement self-heals via in-statement
    # retry + WAL replay.  Report the replay cost the recovery charged.
    from repro.common.errors import ReproError
    from repro.faults import Fault, FaultPlan

    ledger = session.cluster.ledger
    replay_before = ledger.seconds_for("hbase", "wal_replay")
    # nth_hit lands inside the publish loop (hit 1 is the metadata
    # catalog write, which is not wrapped by statement retries).
    session.cluster.faults.install(FaultPlan([
        Fault("hbase.put", nth_hit=8, kind="region_crash")]))
    crashed_update = session.execute(tpch.update_ratio_sql(0.01))
    session.cluster.faults.uninstall()
    replay_s = ledger.seconds_for("hbase", "wal_replay") - replay_before
    rows.append(("update across region-server crash (wal replay %.2fs)"
                 % replay_s, crashed_update.affected,
                 round(crashed_update.sim_seconds, 2)))
    mid_region = session.execute(tpch.QUERY_C_COUNT)
    rows.append(("post region-server crash count", mid_region.scalar(),
                 round(mid_region.sim_seconds, 2)))

    # Crash mid-COMPACT: the client dies after the manifest is durable;
    # recover() rolls the compaction forward from the manifest.
    handler = session.table("lineitem").handler
    session.cluster.faults.install(FaultPlan([
        Fault("dualtable.compact.truncate", nth_hit=1, kind="kill")]))
    compact_failed = False
    try:
        session.execute("COMPACT TABLE lineitem")
    except ReproError:
        compact_failed = True
    session.cluster.faults.uninstall()
    recover_before = ledger.seconds_for("hdfs") + ledger.seconds_for("hbase")
    outcome = handler.recover()
    recover_s = (ledger.seconds_for("hdfs") + ledger.seconds_for("hbase")
                 - recover_before)
    rows.append(("compact crash recovery (%s)"
                 % outcome["compact"], "crashed" if compact_failed else "ok",
                 round(recover_s, 2)))

    final = session.execute(tpch.QUERY_C_COUNT)
    rows.append(("final count", final.scalar(),
                 round(final.sim_seconds, 2)))
    return ExperimentResult(
        experiment="ablation-failure",
        title="Ablation: DualTable correctness under datanode, "
              "region-server, and mid-COMPACT failures",
        columns=["phase", "value", "sim_seconds"],
        rows=rows,
        notes="Counts must match across all phases: replication hides "
              "datanode loss, the WAL hides region-server crashes, and "
              "the compaction manifest makes COMPACT crash-safe.")


def ablation_scenarios(scale="small"):
    """End-to-end Table-I scenarios: the system-level payoff.

    Replays each grid business scenario's statement mix (Table I, scaled
    down 10x) on Hive vs DualTable and reports the scenario-level
    speedup — the quantity the 1am-7am batch window actually cares about.
    """
    from repro.workloads import scenarios

    scale = resolve_scale(scale)
    rows = []
    for scenario_id in (1, 2, 3, 4, 5):
        statements = scenarios.build_scenario(scenario_id,
                                              statements_factor=0.06)
        totals = {}
        for label, storage, mode in (("hive", "orc", None),
                                     ("dualtable", "dualtable", "cost")):
            session = grid_session(storage, scale, ["tj_gbsjwzl_mx"],
                                   mode=mode)
            scenarios.prepare_session(session)
            total, _ = scenarios.run_scenario(session, statements)
            totals[label] = total
        dml_count = sum(1 for kind, _ in statements if kind != "select")
        rows.append((scenario_id, len(statements), dml_count,
                     round(totals["hive"], 1),
                     round(totals["dualtable"], 1),
                     "%.1fx" % (totals["hive"] / totals["dualtable"])))
    return ExperimentResult(
        experiment="ablation-scenarios",
        title="Ablation: end-to-end Table-I scenario replay "
              "(Hive vs DualTable)",
        columns=["scenario", "statements", "dml_statements", "hive_s",
                 "dualtable_s", "speedup"],
        rows=rows,
        notes="Statement mixes follow Table I (scaled 0.06x); the higher "
              "a scenario's DML share, the bigger DualTable's win.")


def ablation_autocompact(scale="small"):
    """Maintenance ablation: never vs manual-full vs auto-incremental.

    A Fig.8-style mix — one single-day UPDATE then k following reads,
    repeated over rotating days — run under three maintenance regimes:

    * ``never-compact``   — deltas accumulate, every read pays UnionRead;
    * ``manual-full``     — a full COMPACT every 3 rounds (the DBA cron);
    * ``auto-incremental``— the daemon decides, folding only the files
      whose amortized delta overhead exceeds their rewrite cost.

    Totals are wall-clock on the simulated clock, so the auto strategy
    is charged for its decisions and compactions too.
    """
    from repro.workloads.smartgrid import GRID_DAYS

    scale = resolve_scale(scale)
    table = "tj_gbsjwzl_mx"
    rounds, reads_per_round = 9, 4
    rows = []
    extras = {"rounds": rounds, "reads_per_round": reads_per_round}
    for strategy in ("never-compact", "manual-full", "auto-incremental"):
        session = grid_session("dualtable", scale, [table], mode="edit",
                               read_factor=reads_per_round)
        clock = session.cluster.clock
        if strategy == "auto-incremental":
            session.execute("ALTER TABLE %s SET AUTOCOMPACT (ON)" % table)
        totals = {"update": 0.0, "read": 0.0, "compact": 0.0,
                  "maintenance": 0.0}
        start = clock.now
        for i in range(rounds):
            day = GRID_DAYS[i % len(GRID_DAYS)]
            before = clock.now
            update = session.execute(
                "UPDATE %s SET cjbm = 'rc%d', val = val + 1 "
                "WHERE rq = '%s'" % (table, i, day))
            totals["update"] += update.sim_seconds
            totals["maintenance"] += (clock.now - before
                                      - update.sim_seconds)
            for _ in range(reads_per_round):
                before = clock.now
                read = session.execute(smartgrid.FOLLOWING_SELECT_SQL)
                totals["read"] += read.sim_seconds
                totals["maintenance"] += (clock.now - before
                                          - read.sim_seconds)
            if strategy == "manual-full" and (i + 1) % 3 == 0:
                compact = session.execute("COMPACT TABLE %s" % table)
                totals["compact"] += compact.sim_seconds
        total = clock.now - start
        for category in ("update", "read", "compact", "maintenance"):
            # + 0.0 normalizes the -0.0 that clock-delta rounding yields.
            rows.append((strategy, category,
                         round(totals[category], 1) + 0.0))
        rows.append((strategy, "total", round(total, 1)))
        extras.setdefault("totals", {})[strategy] = round(total, 2)
        if strategy == "auto-incremental":
            records = session.maintenance.records
            executed = [r for r in records
                        if r.trigger == "auto" and r.rel_error is not None]
            extras["auto_compactions"] = len(executed)
            extras["auto_declines"] = sum(
                1 for r in records if r.action == "declined")
            if executed:
                extras["max_rel_error"] = round(
                    max(r.rel_error for r in executed), 4)
    return ExperimentResult(
        experiment="ablation-autocompact",
        title="Ablation: maintenance strategy under an update+read mix",
        columns=["strategy", "category", "seconds"],
        rows=rows,
        notes="Auto-incremental folds only amortized files, so it beats "
              "both extremes: it pays less UnionRead than never-compact "
              "and less rewrite than a blind full COMPACT every 3 rounds.",
        extras=extras)


EXPERIMENTS = {
    "table1": table1, "table2": table2, "table3": table3,
    "table4": table4,
    "fig4": fig4, "fig5": fig5, "fig6": fig6, "fig7": fig7, "fig8": fig8,
    "fig9": fig9, "fig10": fig10, "fig11": fig11, "fig12": fig12,
    "fig13": fig13, "fig14": fig14, "fig15": fig15, "fig16": fig16,
    "fig17": fig17, "fig18": fig18,
    "ablation-costmodel": ablation_costmodel,
    "ablation-acid": ablation_acid,
    "ablation-compact": ablation_compact,
    "ablation-k": ablation_k,
    "ablation-attached": ablation_attached,
    "ablation-scenarios": ablation_scenarios,
    "ablation-autocompact": ablation_autocompact,
    "ablation-failure": ablation_failure,
    "ablation-partitions": ablation_partitions,
}
