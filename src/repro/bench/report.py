"""ASCII rendering of experiment results."""


def format_table(columns, rows):
    """Render rows as an aligned ASCII table."""
    columns = [str(c) for c in columns]
    printable = [[_cell(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in printable:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(c.ljust(w) for c, w in zip(columns, widths)), sep]
    for row in printable:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


def render(result):
    """Render one ExperimentResult with title and notes."""
    out = ["== %s ==" % result.title,
           format_table(result.columns, result.rows)]
    if result.notes:
        out.append("note: %s" % result.notes)
    return "\n".join(out) + "\n"
