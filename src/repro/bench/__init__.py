"""Benchmark harness: regenerates every table and figure of the paper."""

from repro.bench.experiments import EXPERIMENTS, ExperimentResult
from repro.bench.report import format_table, render
from repro.bench.runners import SCALES, BenchScale, grid_session, tpch_session

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "format_table",
    "render",
    "SCALES",
    "BenchScale",
    "grid_session",
    "tpch_session",
]
