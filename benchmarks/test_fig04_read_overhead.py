"""Figure 4: grid read performance with an empty Attached Table."""


def test_fig4(run_experiment):
    result = run_experiment("fig4")
    by_key = {(r[0], r[1]): r[2] for r in result.rows}
    for query in ("query1_join", "query2_count"):
        hive = by_key[("Hive(HDFS)", query)]
        dual = by_key[("DualTable", query)]
        # DualTable pays a small overhead, bounded (paper: 8-12%).
        assert dual <= hive * 1.3
        assert dual >= hive * 0.95
