"""Figure 11: TPC-H read performance on the three systems."""


def test_fig11(run_experiment):
    result = run_experiment("fig11")
    by_key = {(r[0], r[1]): r[2] for r in result.rows}
    for query in ("query-a(Q1)", "query-b(Q12)", "query-c(count)"):
        hive = by_key[("Hive(HDFS)", query)]
        hbase = by_key[("Hive(HBase)", query)]
        dual = by_key[("DualTable", query)]
        # DualTable's overhead is negligible; HBase reads are far slower.
        assert abs(dual - hive) < 0.15 * hive
        assert hbase > hive * 1.5
