"""Figure 17: full scan after DELETE — UnionRead overhead (TPC-H)."""

from conftest import series


def test_fig17(run_experiment):
    result = run_experiment("fig17")
    hive = series(result, "Read in Hive(HDFS)")
    union = series(result, "UnionRead in DualTable")
    # Hive reads less data after deletes; DualTable keeps the master.
    assert hive[-1] < hive[0]
    assert union[-1] >= union[0]
    assert union[-1] > hive[-1]
