"""Figure 16: UPDATE + successive read total (TPC-H)."""

from conftest import series


def test_fig16(run_experiment):
    result = run_experiment("fig16")
    hive = series(result, "Hive(HDFS)+Read")
    edit = series(result, "DualTable EDIT+UnionRead")
    plans = series(result, "cost_model_plan")
    ratios = [int(r.rstrip("%")) for r in series(result, "ratio")]
    assert edit[0] < hive[0]
    # Paper: the total-cost crossover sits slightly below the
    # update-only crossover of fig13 (~35%).
    crossover = next(r for r, e, h in zip(ratios, edit, hive) if e > h)
    assert crossover <= 35
    assert plans[0] == "edit"
