"""Figure 18: DELETE + successive read total (TPC-H)."""

from conftest import series


def test_fig18(run_experiment):
    result = run_experiment("fig18")
    hive = series(result, "Hive(HDFS)+Read")
    edit = series(result, "DualTable EDIT+UnionRead")
    ratios = [int(r.rstrip("%")) for r in series(result, "ratio")]
    # Paper: below ~30% delete ratio DualTable is always more efficient;
    # at this simulation's calibration the total-cost crossover lands
    # around 20%, so assert strictly below that.
    for r, e, h in zip(ratios, edit, hive):
        if r <= 15:
            assert e < h
    assert edit[-1] > hive[-1]
