"""Figure 7: SELECT after UPDATE — UnionRead overhead (grid)."""

from conftest import series


def test_fig7(run_experiment):
    result = run_experiment("fig7")
    hive = series(result, "Read in Hive(HDFS)")
    union = series(result, "UnionRead in DualTable")
    # Hive's read is unaffected by the update ratio.
    assert max(hive) - min(hive) < 0.1 * max(hive)
    # UnionRead grows with the Attached Table and never wins here.
    assert union == sorted(union)
    assert all(u >= h for u, h in zip(union, hive))
    # Small at 1/36, multiple x at 17/36 (paper: 2.7x).
    assert union[0] < hive[0] * 1.6
    assert union[-1] > hive[-1] * 2
