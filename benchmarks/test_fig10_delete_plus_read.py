"""Figure 10: total DELETE + following SELECT (grid)."""

from conftest import series


def test_fig10(run_experiment):
    result = run_experiment("fig10")
    hive = series(result, "Hive(HDFS)+Read")
    edit = series(result, "DualTable EDIT+UnionRead")
    assert edit[0] < hive[0]
    assert edit[-1] > hive[-1]
