"""Figure 15: full scan after UPDATE — UnionRead overhead (TPC-H)."""

from conftest import series


def test_fig15(run_experiment):
    result = run_experiment("fig15")
    hive = series(result, "Read in Hive(HDFS)")
    union = series(result, "UnionRead in DualTable")
    assert union == sorted(union)              # linear-ish growth
    assert union[0] < hive[0] * 1.35           # small at 1%
    assert union[-1] > hive[-1] * 1.5          # pronounced at 50%
