"""Ablation benchmarks: cost model accuracy, ACID comparison, COMPACT, k."""

from conftest import series


def test_ablation_costmodel(run_experiment):
    result = run_experiment("ablation-costmodel")
    agreement = series(result, "agrees(±15%)")
    assert all(a == "yes" for a in agreement)


def test_ablation_acid(run_experiment):
    result = run_experiment("ablation-acid")
    acid_reads = [r[3] for r in result.rows
                  if r[0].startswith("Hive ACID")]
    dual_reads = [r[3] for r in result.rows if r[0] == "DualTable"]
    # ACID read cost grows with every delta; DualTable stays near flat.
    assert acid_reads[-1] > acid_reads[0] * 1.5
    assert dual_reads[-1] < dual_reads[0] * 1.5
    assert dual_reads[-1] < acid_reads[-1]


def test_ablation_compact(run_experiment):
    result = run_experiment("ablation-compact")
    reads = [r[2] for r in result.rows]
    # Reads get slower as the Attached Table grows, and COMPACT
    # restores (near-)baseline cost.
    assert reads[3] > reads[0]
    assert reads[-1] < reads[3]
    assert abs(reads[-1] - reads[0]) < 0.1 * reads[0]


def test_ablation_k(run_experiment):
    result = run_experiment("ablation-k")
    update_cross = [float(r[1].rstrip("%")) for r in result.rows]
    delete_cross = [float(r[2].rstrip("%")) for r in result.rows]
    assert update_cross == sorted(update_cross, reverse=True)
    assert delete_cross == sorted(delete_cross, reverse=True)


def test_ablation_attached_backend(run_experiment):
    result = run_experiment("ablation-attached")
    by_key = {(r[0], r[1]): r[2] for r in result.rows}
    # Page read-modify-write makes the B-tree backend slower per edit...
    assert by_key[("btree", "20%")] > by_key[("hbase", "20%")]
    # ...but both backends stay functional and ratio-monotone.
    for backend in ("hbase", "btree"):
        assert by_key[(backend, "1%")] < by_key[(backend, "20%")]


def test_ablation_scenarios(run_experiment):
    result = run_experiment("ablation-scenarios")
    assert len(result.rows) == 5
    # DualTable wins every end-to-end scenario (the 1am-7am story).
    for row in result.rows:
        scenario, _, _, hive_s, dual_s = row[0], row[1], row[2], row[3], row[4]
        assert dual_s < hive_s, scenario


def test_ablation_partitions(run_experiment):
    result = run_experiment("ablation-partitions")
    by_key = {(r[0], r[1]): r[2] for r in result.rows}
    flat = by_key[("Hive flat ORC", "aligned (1 day)")]
    part = by_key[("Hive partitioned by day", "aligned (1 day)")]
    dual_sub = by_key[("DualTable", "sub-partition (day+org)")]
    part_sub = by_key[("Hive partitioned by day", "sub-partition (day+org)")]
    # Partitioning rescues Hive for aligned updates...
    assert part < flat / 2
    # ...but DualTable still wins the sub-partition case.
    assert dual_sub < part_sub


def test_ablation_failure(run_experiment):
    result = run_experiment("ablation-failure")
    counts = [row[1] for row in result.rows
              if str(row[0]).endswith("count")]
    # Every count phase returns the same answer despite the failure.
    assert len(set(counts)) == 1


def test_ablation_autocompact(run_experiment):
    result = run_experiment("ablation-autocompact")
    totals = {r[0]: r[2] for r in result.rows if r[1] == "total"}
    # Auto-incremental beats both extremes end to end.
    assert totals["auto-incremental"] < totals["never-compact"]
    assert totals["auto-incremental"] < totals["manual-full"]
    # The daemon actually ran, and every executed compaction's cost
    # prediction was audited within 25%.
    assert result.extras["auto_compactions"] >= 1
    assert result.extras["max_rel_error"] <= 0.25
