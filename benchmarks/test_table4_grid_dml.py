"""Table IV: the eight representative grid DML statements."""


def test_table4(run_experiment):
    result = run_experiment("table4")
    assert len(result.rows) == 8
    # Paper's headline: DualTable beats Hive on every statement.
    for row in result.rows:
        stmt, _, hive_s, dual_s = row[0], row[1], row[2], row[3]
        assert dual_s < hive_s, stmt
