"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures at the
``tiny`` scale (override with ``--bench-scale``) and asserts its headline
*shape* (who wins / where the crossover falls).  Ratio sweeps that feed
several figures are memoized inside :mod:`repro.bench.experiments`, so
e.g. fig5/fig7/fig8 share one sweep.
"""

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.report import render


def pytest_addoption(parser):
    parser.addoption("--bench-scale", default="tiny",
                     choices=["tiny", "small", "medium"],
                     help="data scale for the paper-figure benchmarks")


@pytest.fixture(scope="session")
def bench_scale(request):
    return request.config.getoption("--bench-scale")


@pytest.fixture
def run_experiment(benchmark, bench_scale, capsys):
    """Run one named experiment under pytest-benchmark and print it."""

    def run(name):
        fn = EXPERIMENTS[name]
        result = benchmark.pedantic(lambda: fn(scale=bench_scale),
                                    rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(render(result))
        return result

    return run


def series(result, column):
    """Extract one named column of an ExperimentResult as a list."""
    idx = result.columns.index(column)
    return [row[idx] for row in result.rows]
