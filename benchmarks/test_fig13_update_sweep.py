"""Figure 13: TPC-H UPDATE run time vs ratio (1%-50%)."""

from conftest import series


def test_fig13(run_experiment):
    result = run_experiment("fig13")
    hive = series(result, "Hive(HDFS)")
    edit = series(result, "DualTable EDIT")
    plans = series(result, "cost_model_plan")
    ratios = [int(r.rstrip("%")) for r in series(result, "ratio")]
    assert max(hive) - min(hive) < 0.05 * max(hive)    # Hive flat
    assert edit == sorted(edit)                         # EDIT grows
    assert edit[0] < hive[0] / 2                        # big win at 1%
    # Crossover in the paper's ballpark (~35%): between 20% and 50%.
    switch_ratio = ratios[plans.index("overwrite")]
    assert 20 <= switch_ratio <= 50
