"""Table I: ratio of DML operations in the five grid scenarios."""


def test_table1(run_experiment):
    result = run_experiment("table1")
    # The paper's headline: DML is at least 50% in every scenario.
    assert all(row[-1] >= 50 for row in result.rows)
