"""Figure 8: total UPDATE + following SELECT (grid)."""

from conftest import series


def test_fig8(run_experiment):
    result = run_experiment("fig8")
    hive = series(result, "Hive(HDFS)+Read")
    edit = series(result, "DualTable EDIT+UnionRead")
    cost = series(result, "DualTable+Read")
    assert edit[0] < hive[0]          # DualTable wins at low ratio
    assert edit[-1] > hive[-1]        # pure EDIT loses at high ratio
    assert all(c <= max(e, h) * 1.05 for c, e, h in zip(cost, edit, hive))
