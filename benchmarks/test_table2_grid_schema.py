"""Table II: the State Grid read-experiment data set."""


def test_table2(run_experiment):
    result = run_experiment("table2")
    assert len(result.rows) == 6
    # tj_gbsjwzl_mx is the largest table, as in the paper.
    largest = max(result.rows, key=lambda r: r[1])
    assert largest[0] == "tj_gbsjwzl_mx"
