"""Figure 14: TPC-H DELETE run time vs ratio (1%-50%)."""

from conftest import series


def test_fig14(run_experiment):
    result = run_experiment("fig14")
    hive = series(result, "Hive(HDFS)")
    plans = series(result, "cost_model_plan")
    ratios = [int(r.rstrip("%")) for r in series(result, "ratio")]
    assert hive[-1] < hive[0]                  # Hive cheapens with β
    delete_switch = ratios[plans.index("overwrite")]
    assert delete_switch <= 40                 # earlier than update's
