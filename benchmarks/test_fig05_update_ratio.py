"""Figure 5: grid UPDATE run time vs modification ratio (1/36..17/36)."""

from conftest import series


def test_fig5(run_experiment):
    result = run_experiment("fig5")
    hive = series(result, "Hive(HDFS)")
    edit = series(result, "DualTable EDIT")
    cost = series(result, "DualTable Cost-Model")
    plans = series(result, "cost_model_plan")
    # Hive is flat; EDIT grows with the ratio.
    assert max(hive) - min(hive) < 0.1 * max(hive)
    assert edit == sorted(edit)
    # EDIT wins at the smallest ratio by a large factor (paper: >3x).
    assert edit[0] < hive[0] / 2
    # The cost model switches from EDIT to OVERWRITE exactly once.
    assert plans[0] == "edit" and plans[-1] == "overwrite"
    switch = plans.index("overwrite")
    assert all(p == "edit" for p in plans[:switch])
    # After the switch the cost-model line tracks Hive closely.
    for c, h, p in zip(cost, hive, plans):
        if p == "overwrite":
            assert abs(c - h) < 0.1 * h
