"""Table III: the State Grid DML-experiment data set."""


def test_table3(run_experiment):
    result = run_experiment("table3")
    assert len(result.rows) == 6
    assert {r[0] for r in result.rows} == {
        "tj_tdjl", "tj_td", "tj_sjwzl_r", "tj_dysjwzl_mx",
        "tj_sjwzl_y", "tj_gk"}
