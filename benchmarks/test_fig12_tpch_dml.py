"""Figure 12: TPC-H DML-a/b/c on the three systems."""


def test_fig12(run_experiment):
    result = run_experiment("fig12")
    by_key = {(r[0], r[1]): r[2] for r in result.rows}
    statements = {r[1] for r in result.rows}
    for stmt in statements:
        dual = by_key[("DualTable", stmt)]
        hive = by_key[("Hive(HDFS)", stmt)]
        hbase = by_key[("Hive(HBase)", stmt)]
        # Paper: DualTable is the most efficient for all three.
        assert dual < hive
        assert dual < hbase
