"""Figure 6: grid DELETE run time vs deletion ratio."""

from conftest import series


def test_fig6(run_experiment):
    result = run_experiment("fig6")
    hive = series(result, "Hive(HDFS)")
    edit = series(result, "DualTable EDIT")
    plans = series(result, "cost_model_plan")
    # Hive's cost *falls* as the ratio rises (less data rewritten).
    assert hive[-1] < hive[0]
    # EDIT grows; it wins by ~3x at 1/36 (paper: 3x).
    assert edit == sorted(edit)
    assert edit[0] < hive[0] / 2
    # Delete crossover happens (paper: around 10/36).
    assert "overwrite" in plans and plans[0] == "edit"
