"""Figure 9: SELECT after DELETE — UnionRead overhead (grid)."""

from conftest import series


def test_fig9(run_experiment):
    result = run_experiment("fig9")
    hive = series(result, "Read in Hive(HDFS)")
    union = series(result, "UnionRead in DualTable")
    # After Hive's delete the table shrank, so its read gets cheaper.
    assert hive[-1] <= hive[0]
    # DualTable keeps the full master plus markers: reads grow.
    assert union[-1] >= union[0]
    assert union[-1] > hive[-1]
